"""Streaming ingestion for the lake: live tails + sealed segments.

The subsystem that turns the batch-only lake into an append-capable one
(the collector -> tsdb shape of the paper's operational setting):

* :mod:`~repro.storage.live.wal` -- the append-only, CRC-framed tail WAL
  under ``_manifest/live/`` and its read-side
  :class:`~repro.storage.live.wal.LiveTailIndex` (what
  :meth:`~repro.storage.datalake.DataLakeStore.query` consults to answer
  from committed segments *plus* the live tail).
* :mod:`~repro.storage.live.ingest` -- :class:`LiveIngestor`, the
  collector-side writer: fsync-batched appends, crash replay, and the
  seal protocol that publishes tail windows as immutable ``.sgx``
  segments through ordinary manifest transactions.

This package is the sole owner of ``tail.wal`` bytes; the
``live-boundary`` lint rule keeps every other module out.
"""

from repro.storage.live.ingest import (
    LIVE_FAULT_POINTS,
    SEAL_WAL_FAULT_POINT,
    LiveIngestError,
    LiveIngestor,
    SealReport,
    StaleBatchError,
)
from repro.storage.live.wal import (
    LIVE_DIR_NAME,
    NO_WATERMARK,
    LiveTailIndex,
    LiveWalError,
    LiveWalWarning,
    TailSnapshot,
    committed_seal_watermark,
    live_dir,
    wal_path,
)

__all__ = [
    "LIVE_DIR_NAME",
    "LIVE_FAULT_POINTS",
    "NO_WATERMARK",
    "SEAL_WAL_FAULT_POINT",
    "LiveIngestError",
    "LiveIngestor",
    "LiveTailIndex",
    "LiveWalError",
    "LiveWalWarning",
    "SealReport",
    "StaleBatchError",
    "TailSnapshot",
    "committed_seal_watermark",
    "live_dir",
    "wal_path",
]
