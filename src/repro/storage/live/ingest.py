"""Streaming ingestion into the lake: active tails + sealed segments.

:class:`LiveIngestor` is the collector-side write surface of
``repro.storage.live``.  Telemetry batches for a ``(region, week)``
partition land in that partition's tail WAL (:mod:`repro.storage.live.wal`)
-- append-only, CRC-framed, fsync-batched, so the hot path never pays the
manifest's per-mutation commit protocol -- and are **sealed** into the
lake proper at ``chunk_minutes`` boundaries.

A seal is one ordinary manifest transaction and therefore inherits every
PR 9 guarantee (crash recovery to a transaction boundary, snapshot
isolation, pinning, gc):

1. flush the WAL (everything to be sealed is durable *before* the
   transaction starts);
2. bucket the tail rows below the watermark ``W`` onto the extract grid
   and merge them after the partition's committed rows;
3. ``ManifestTransaction``: intent (op = ``live-seal <region> week<NNNN>
   through <W>``) -> content-addressed ``.sgx`` v4 segment -> generation
   N+1 -> atomic pointer swap;
4. rewrite the WAL keeping only rows ``>= W``, header watermark = ``W``.

The commit point is step 3's pointer swap.  A crash before it rolls the
seal back (tail rows still in the WAL, readers on generation N); a crash
*after* it but before step 4 leaves sealed rows in the WAL -- which is why
the op string carries ``W``: replay dedupes against the committed txlog
watermark (:func:`~repro.storage.live.wal.committed_seal_watermark`), so
the rows surface exactly once however the crash lands.  Step 4 has its own
fault point (:data:`SEAL_WAL_FAULT_POINT`) so the crash harness can aim at
precisely that window.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.storage import columnar
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.live import wal as livewal
from repro.storage.live.wal import (
    NO_WATERMARK,
    TailFrame,
    TailWal,
    committed_seal_watermark,
    seal_op,
)
from repro.storage.manifest import FAULT_POINTS, fault_point
from repro.storage.query import ExtractQuery
from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES, align_down
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.resample import regularize

__all__ = [
    "LIVE_FAULT_POINTS",
    "SEAL_WAL_FAULT_POINT",
    "LiveIngestError",
    "LiveIngestor",
    "SealReport",
    "StaleBatchError",
]

#: The one live-specific crash-injection point: fired between the seal
#: transaction's commit and the WAL trim that drops the sealed rows.
SEAL_WAL_FAULT_POINT = "live.wal.rewrite"

#: Every fault point a seal can crash at: the full manifest protocol plus
#: the post-commit WAL trim.
LIVE_FAULT_POINTS = FAULT_POINTS + (SEAL_WAL_FAULT_POINT,)


class LiveIngestError(RuntimeError):
    """A live-ingestion operation could not be carried out coherently."""


class StaleBatchError(LiveIngestError):
    """A batch carries rows below the partition's seal watermark.

    Those minutes are already durable in a committed, immutable ``.sgx``
    segment; accepting them would silently fork history.  The collector
    must drop or re-route late data explicitly.
    """


@dataclass(frozen=True)
class SealReport:
    """What one seal committed."""

    region: str
    week: int
    #: First minute of the sealed window (the previous watermark, or the
    #: earliest sealed bucket for a partition's first seal).
    window_start: int
    #: The new watermark ``W``: rows strictly below it are now committed.
    sealed_through: int
    #: Grid rows (post-bucketing) the seal appended to the partition.
    rows_sealed: int
    #: Servers that contributed sealed rows.
    servers: tuple[str, ...]
    #: Manifest generation the seal committed.
    generation: int
    #: Raw rows still live in the WAL after the trim.
    tail_rows_remaining: int

    @property
    def key(self) -> ExtractKey:
        return ExtractKey(region=self.region, week=self.week)


@dataclass
class _ActiveTail:
    wal: TailWal
    frames: list[TailFrame]
    watermark: int

    @property
    def rows(self) -> int:
        return sum(len(frame) for frame in self.frames)


class LiveIngestor:
    """Collector-side streaming writer for one lake.

    Parameters
    ----------
    store:
        The lake to ingest into.  Must be on-disk (tails are files) and
        unpinned (sealing publishes new generations).
    interval_minutes:
        The extract grid sealed segments are bucketed onto.
    chunk_minutes:
        Seal boundary and ``.sgx`` chunking policy.  Defaults to the
        store's ``chunk_minutes`` (or the columnar per-day default); must
        be a positive multiple of ``interval_minutes``.
    fsync_every:
        Append batches between WAL fsyncs (1 = every batch durable).
    principal:
        Principal the ingestor acts as, checked against the store's
        allow-list up front and used for every seal write.

    Opening the ingestor replays every on-disk tail WAL: complete frames
    survive, a torn tail is dropped loudly, and rows below a committed
    seal watermark (a crash hit between commit and trim) are deduped --
    so a crashed collector loses at most the batches appended since the
    last fsync.
    """

    def __init__(
        self,
        store: DataLakeStore,
        *,
        interval_minutes: int = DEFAULT_INTERVAL_MINUTES,
        chunk_minutes: int | None = None,
        fsync_every: int = 16,
        principal: str | None = None,
    ) -> None:
        if store.root is None:
            raise ValueError("live ingestion needs an on-disk lake (tails are files)")
        if store.pinned_generation is not None:
            raise ValueError("cannot ingest into a pinned (read-only) store")
        store.check_access(principal)
        if interval_minutes <= 0:
            raise ValueError("interval_minutes must be positive")
        if chunk_minutes is None:
            chunk_minutes = store.chunk_minutes
        if chunk_minutes is None:
            chunk_minutes = columnar.DEFAULT_CHUNK_MINUTES
        if chunk_minutes <= 0:
            raise ValueError("live sealing needs a positive chunk_minutes boundary")
        if chunk_minutes % interval_minutes != 0:
            raise ValueError(
                f"chunk_minutes ({chunk_minutes}) must be a multiple of "
                f"interval_minutes ({interval_minutes}) so seal boundaries "
                f"fall on grid points"
            )
        self._store = store
        self._root: Path = store.root
        self._interval = int(interval_minutes)
        self._chunk = int(chunk_minutes)
        self._fsync_every = fsync_every
        self._principal = principal
        self._tails: dict[ExtractKey, _ActiveTail] = {}
        self._replay_existing()

    # ------------------------------------------------------------------ #

    def _replay_existing(self) -> None:
        index = livewal.LiveTailIndex(self._root)
        for region, week in index.keys():
            self._open_tail(ExtractKey(region=region, week=week))

    def _open_tail(self, key: ExtractKey) -> _ActiveTail:
        tail = self._tails.get(key)
        if tail is not None:
            return tail
        watermark = committed_seal_watermark(self._root, key.region, key.week)
        wal, replay = TailWal.open(
            livewal.wal_path(self._root, key.region, key.week),
            key.region,
            key.week,
            self._interval,
            fsync_every=self._fsync_every,
            watermark=watermark if watermark != NO_WATERMARK else None,
        )
        tail = _ActiveTail(wal=wal, frames=replay.frames, watermark=replay.sealed_through)
        self._tails[key] = tail
        return tail

    @property
    def store(self) -> DataLakeStore:
        return self._store

    @property
    def interval_minutes(self) -> int:
        return self._interval

    @property
    def chunk_minutes(self) -> int:
        """Seal boundary (and ``.sgx`` chunking) in minutes."""
        return self._chunk

    def tails(self) -> list[ExtractKey]:
        """Partitions with an open tail, sorted."""
        return sorted(self._tails)

    def pending_rows(self, key: ExtractKey | None = None) -> int:
        """Raw unsealed rows in one tail (or across all of them)."""
        if key is not None:
            tail = self._tails.get(key)
            return tail.rows if tail is not None else 0
        return sum(tail.rows for tail in self._tails.values())

    def watermark(self, key: ExtractKey) -> int:
        """The partition's seal watermark (:data:`NO_WATERMARK` if never
        sealed)."""
        tail = self._tails.get(key)
        if tail is not None:
            return tail.watermark
        return committed_seal_watermark(self._root, key.region, key.week)

    # ------------------------------------------------------------------ #

    def ingest(
        self,
        key: ExtractKey,
        metadata: ServerMetadata,
        timestamps: np.ndarray,
        values: np.ndarray,
    ) -> int:
        """Append one batch of raw samples for one server; returns rows.

        The batch may be irregular (any sampling cadence); sealing buckets
        it onto the ``interval_minutes`` grid.  Rows below the partition's
        seal watermark raise :class:`StaleBatchError` -- those minutes are
        already immutable.  Durability is fsync-batched: the batch is
        crash-safe after the next ``fsync_every`` boundary or
        :meth:`flush`.
        """
        ts = np.ascontiguousarray(timestamps, dtype=np.int64)
        vs = np.ascontiguousarray(values, dtype=np.float64)
        if ts.shape != vs.shape or ts.ndim != 1:
            raise LiveIngestError("batch timestamps/values must be equal-length 1-d arrays")
        if ts.size == 0:
            return 0
        tail = self._open_tail(key)
        if tail.watermark != NO_WATERMARK and int(ts.min()) < tail.watermark:
            raise StaleBatchError(
                f"batch for {key} reaches back to minute {int(ts.min())}, below "
                f"the seal watermark {tail.watermark}; that window is already "
                f"committed and immutable"
            )
        tail.wal.append(metadata, ts, vs)
        tail.frames.append(TailFrame(metadata, ts, vs))
        return int(ts.size)

    def flush(self, key: ExtractKey | None = None) -> None:
        """Fsync one tail WAL (or all of them) now."""
        tails = [self._tails[key]] if key is not None else list(self._tails.values())
        for tail in tails:
            tail.wal.flush()

    # ------------------------------------------------------------------ #

    def seal(self, key: ExtractKey, through: int | None = None) -> SealReport | None:
        """Seal the partition's tail rows below ``through`` into the lake.

        ``through`` defaults to the last full ``chunk_minutes`` boundary
        covered by the tail and must be chunk-aligned (sealed segments
        end exactly on zone-map chunk edges).  Returns ``None`` when
        there is nothing below the boundary to seal; otherwise commits
        one manifest transaction merging the bucketed tail rows after the
        partition's committed rows and trims the WAL.
        """
        tail = self._tails.get(key)
        if tail is None or not tail.frames:
            return None
        if through is None:
            newest = max(int(frame.timestamps.max()) for frame in tail.frames)
            through = align_down(newest, self._chunk)
        elif through % self._chunk != 0:
            raise LiveIngestError(
                f"seal boundary {through} is not aligned to chunk_minutes "
                f"({self._chunk}); sealed segments must end on chunk edges"
            )
        if through <= tail.watermark:
            return None

        # Everything to be sealed must be durable in the WAL before the
        # manifest transaction starts, or a crash after the commit could
        # lose rows the segment claims to contain.
        tail.wal.flush()

        sealed: dict[str, tuple[ServerMetadata, list[np.ndarray], list[np.ndarray]]] = {}
        for frame in tail.frames:
            below = frame.timestamps < through
            if not below.any():
                continue
            slot = sealed.setdefault(frame.metadata.server_id, (frame.metadata, [], []))
            slot[1].append(frame.timestamps[below])
            slot[2].append(frame.values[below])
        if not sealed:
            return None

        base = self._store.query(
            ExtractQuery.for_key(key, interval_minutes=self._interval),
            principal=self._principal,
            include_tail=False,
        ).frame
        merged = LoadFrame(self._interval)
        for _server_id, metadata, series in base.items():
            merged.add_server(metadata, series)
        rows_sealed = 0
        window_start = through
        for server_id, (metadata, ts_parts, vs_parts) in sorted(sealed.items()):
            series = regularize(
                np.concatenate(ts_parts), np.concatenate(vs_parts), self._interval
            )
            rows_sealed += len(series)
            window_start = min(window_start, align_down(series.start, self._chunk))
            if server_id in merged:
                existing = merged.series(server_id)
                try:
                    combined = existing.concat(series)
                except ValueError as exc:
                    raise LiveIngestError(
                        f"tail rows for server {server_id!r} overlap the "
                        f"committed extract for {key} ({exc}); the lake was "
                        f"mutated out-of-band below the live watermark"
                    ) from exc
                merged.add_server(merged.metadata(server_id), combined, overwrite=True)
            else:
                merged.add_server(metadata, series)
        if tail.watermark != NO_WATERMARK:
            window_start = tail.watermark

        payload = columnar.frame_to_sgx_bytes(merged, chunk_minutes=self._chunk)
        manifest = self._store.manifest
        assert manifest is not None  # on-disk store, checked at construction
        with manifest.transaction(seal_op(key.region, key.week, through)) as txn:
            txn.stage(key.region, key.week, "sgx", payload)
            txn.drop(key.region, key.week, "csv")
        generation = manifest.current().generation

        # -- committed.  The trim below is pure hygiene: if we crash here
        # (the fault point simulates exactly that), replay dedupes the
        # still-present sealed rows against the txlog watermark.
        fault_point(SEAL_WAL_FAULT_POINT)
        remaining: list[TailFrame] = []
        for frame in tail.frames:
            keep = frame.timestamps >= through
            if keep.all():
                remaining.append(frame)
            elif keep.any():
                remaining.append(
                    TailFrame(frame.metadata, frame.timestamps[keep], frame.values[keep])
                )
        tail.wal.rewrite(remaining, through)
        tail.frames = remaining
        tail.watermark = through
        return SealReport(
            region=key.region,
            week=key.week,
            window_start=window_start,
            sealed_through=through,
            rows_sealed=rows_sealed,
            servers=tuple(sorted(sealed)),
            generation=generation,
            tail_rows_remaining=tail.rows,
        )

    def seal_due(self, now_minute: int) -> list[SealReport]:
        """Seal every partition up to the chunk boundary at ``now_minute``.

        The collector's clock tick: ``align_down(now_minute,
        chunk_minutes)`` becomes the watermark for every tail that has
        rows below it.  Returns the (possibly empty) list of seals that
        committed.
        """
        boundary = align_down(now_minute, self._chunk)
        reports = []
        for key in self.tails():
            report = self.seal(key, boundary)
            if report is not None:
                reports.append(report)
        return reports

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Flush and close every tail WAL (the tails stay on disk)."""
        for tail in self._tails.values():
            tail.wal.close()
        self._tails.clear()

    def __enter__(self) -> "LiveIngestor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
