"""In-place lake conversion between extract formats.

``python -m repro.fleet_ops convert`` migrates an existing lake from the
row-oriented CSV extracts the load-extraction query historically wrote to
the columnar ``.sgx`` format (or back).  Each extract is decoded from its
stored format, re-encoded, verified by frame content hash -- the converter
never trades durability for speed -- and only then is the source copy
dropped (when requested).  The rollup reports rows and bytes moved so an
operator can see what a migration bought before deleting sources.

Every write and delete here goes through the lake's API and therefore
through its transactional manifest (:mod:`repro.storage.manifest`): a
converted extract is staged as a content-addressed segment and published
as a new committed generation in one atomic pointer swap, so a crash
mid-conversion leaves the lake on the last committed generation -- never
a half-converted extract.  "Deleting" a source copy retires it from the
manifest; the bytes are reclaimed by the explicit ``gc`` pass
(``python -m repro.fleet_ops gc``), and readers pinned to an older
generation keep working until then.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.storage import columnar
from repro.storage.datalake import DataLakeStore, ExtractKey, check_format
from repro.storage.query import ExtractQuery
from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES


def _read_stored_frame(
    lake: DataLakeStore, key: ExtractKey, fmt: str, principal: str | None
):
    """One stored copy of ``key`` as a frame, via the lake's query surface.

    ``interval_minutes=None`` preserves whatever interval the extract
    itself records (the converter must never rewrite it to the default).
    """
    query = ExtractQuery.for_key(key, interval_minutes=None, fmt=fmt)
    return lake.query(query, principal=principal).frame


class ConversionVerificationError(RuntimeError):
    """Raised when a freshly converted extract does not round-trip losslessly."""


@dataclass(frozen=True)
class ConversionRecord:
    """Outcome of converting one extract."""

    key: ExtractKey
    source_format: str
    target_format: str
    rows: int
    bytes_in: int
    bytes_out: int
    skipped: bool = False
    deleted_formats: tuple[str, ...] = ()
    bytes_freed: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "region": self.key.region,
            "week": self.key.week,
            "source_format": self.source_format,
            "target_format": self.target_format,
            "rows": self.rows,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "skipped": self.skipped,
            "deleted_formats": list(self.deleted_formats),
            "bytes_freed": self.bytes_freed,
        }


@dataclass
class LakeConversionReport:
    """Rollup of one :func:`convert_lake` run."""

    to_format: str
    verified: bool
    deleted_source: bool
    records: list[ConversionRecord] = field(default_factory=list)

    @property
    def n_converted(self) -> int:
        return sum(1 for record in self.records if not record.skipped)

    @property
    def n_skipped(self) -> int:
        return sum(1 for record in self.records if record.skipped)

    @property
    def rows_converted(self) -> int:
        return sum(record.rows for record in self.records if not record.skipped)

    @property
    def bytes_in(self) -> int:
        return sum(record.bytes_in for record in self.records if not record.skipped)

    @property
    def bytes_out(self) -> int:
        return sum(record.bytes_out for record in self.records if not record.skipped)

    @property
    def n_sources_deleted(self) -> int:
        return sum(len(record.deleted_formats) for record in self.records)

    @property
    def bytes_freed(self) -> int:
        return sum(record.bytes_freed for record in self.records)

    @property
    def size_ratio(self) -> float:
        """Converted size relative to source size (< 1.0 means smaller)."""
        return self.bytes_out / self.bytes_in if self.bytes_in else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "to_format": self.to_format,
            "verified": self.verified,
            "deleted_source": self.deleted_source,
            "n_converted": self.n_converted,
            "n_skipped": self.n_skipped,
            "rows_converted": self.rows_converted,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "size_ratio": self.size_ratio,
            "n_sources_deleted": self.n_sources_deleted,
            "bytes_freed": self.bytes_freed,
            "extracts": [record.as_dict() for record in self.records],
        }

    def render_text(self) -> str:
        lines = [
            f"Lake conversion to .{self.to_format}: "
            f"{self.n_converted} extract(s) converted, {self.n_skipped} already current"
        ]
        for record in self.records:
            if record.skipped:
                note = ""
                if record.deleted_formats:
                    removed = ", ".join(f".{fmt}" for fmt in record.deleted_formats)
                    note = f"; removed stale {removed} copy ({record.bytes_freed} bytes)"
                lines.append(
                    f"  {record.key.region} week {record.key.week}: "
                    f"already .{record.target_format}{note}"
                )
            else:
                lines.append(
                    f"  {record.key.region} week {record.key.week}: "
                    f"{record.rows} rows, {record.bytes_in} -> {record.bytes_out} bytes "
                    f"(.{record.source_format} -> .{record.target_format})"
                )
        if self.n_converted:
            lines.append(
                f"Total: {self.rows_converted} rows, {self.bytes_in} -> {self.bytes_out} bytes "
                f"({self.size_ratio:.2f}x size), "
                f"verified={'yes' if self.verified else 'no'}, "
                f"sources {'deleted' if self.deleted_source else 'kept'}"
            )
        if self.n_sources_deleted:
            # A --delete-source run must never look like a no-op: say what
            # was removed even when every extract was already current.
            lines.append(
                f"Deleted {self.n_sources_deleted} source copy(ies), "
                f"freeing {self.bytes_freed} bytes"
            )
        return "\n".join(lines)


def _upgrade_sgx_in_place(
    lake: DataLakeStore,
    key: ExtractKey,
    frame,
    raw: bytes,
    verify: bool,
    chunk_minutes: int | None,
    principal: str | None,
) -> ConversionRecord | None:
    """Re-encode ``key``'s stored ``.sgx`` copy under the current format
    version and chunking policy; returns the record, or ``None`` when the
    stored bytes are already exactly what the policy would produce.

    Unlike a cross-format conversion, an upgrade *overwrites its own
    source*, so with ``verify`` the new encoding is round-tripped in
    memory and compared by content hash **before** any write -- once the
    old file is gone there is nothing left to fall back to.  The exact
    verified bytes are what lands on disk (no re-encode in between).

    A version-only upgrade of a file that already carries per-chunk zone
    maps (v2+) must not disturb how the series were chunked: without an
    explicit ``chunk_minutes`` it goes through
    :func:`~repro.storage.columnar.upgrade_sgx_bytes`, which preserves
    every chunk boundary byte-for-byte and only rewrites the chunk-table
    entries (adding per-column CRCs below v3 and the v4 value
    pre-aggregates).  v1 files carry one whole-series chunk per server,
    so they are re-chunked under the effective policy -- that *is* their
    upgrade.  Forcing ``chunk_minutes`` always re-chunks.
    """
    if chunk_minutes is None and columnar.sgx_version(raw) >= 2:
        new_bytes = columnar.upgrade_sgx_bytes(raw)
    else:
        policy = chunk_minutes
        if policy is None:
            policy = lake.chunk_minutes
        if policy is None:
            policy = columnar.DEFAULT_CHUNK_MINUTES
        new_bytes = columnar.frame_to_sgx_bytes(frame, chunk_minutes=policy)
    if new_bytes == bytes(raw):
        return None
    if verify:
        round_tripped = columnar.frame_from_sgx_bytes(new_bytes, None)
        if round_tripped.content_hash() != frame.content_hash():
            raise ConversionVerificationError(
                f"re-chunked .sgx encoding of {key} does not round-trip "
                "losslessly; leaving the stored copy untouched"
            )
    lake.write_extract_bytes(
        key, "sgx", new_bytes, principal=principal, keep_other_formats=True
    )
    return ConversionRecord(
        key=key,
        source_format="sgx",
        target_format="sgx",
        rows=frame.total_points(),
        bytes_in=len(raw),
        bytes_out=len(new_bytes),
    )


def convert_lake(
    lake: DataLakeStore,
    to_format: str = "sgx",
    region: str | None = None,
    delete_source: bool = False,
    verify: bool = True,
    principal: str | None = None,
    chunk_minutes: int | None = None,
) -> LakeConversionReport:
    """Convert every extract in ``lake`` (optionally one region) to ``to_format``.

    Extracts already stored in the target format are health-checked (read
    back) and then skipped; a damaged target copy is dropped and
    re-converted from a healthy source-format copy instead of being
    trusted.  An ``.sgx`` copy in an *older format version* is not
    "already current": it is upgraded in place (v1 gains per-day chunks;
    v2/v3 gain the v4 chunk statistics with their chunk boundaries
    preserved byte-for-byte), verified in memory *before* the old file is
    overwritten -- an upgrade rewrites its own source, so post-write
    rollback would be too late.
    ``chunk_minutes`` sets the ``.sgx`` chunking policy of converted
    extracts; passing it explicitly also forces already-current extracts
    to be re-chunked under that policy.  With
    ``verify`` (the default) the converted copy is read back and its frame
    content hash compared against the source frame; a mismatch raises
    :class:`ConversionVerificationError` and leaves the source untouched.
    The source copy is kept unless ``delete_source`` is set.
    """
    check_format(to_format)
    report = LakeConversionReport(
        to_format=to_format, verified=verify, deleted_source=delete_source
    )
    for key in lake.list_extracts(region, principal=principal):
        formats = lake.extract_formats(key, principal=principal)
        if to_format in formats:
            # Already current -- but only trust the stored target copy if
            # it actually reads back; a damaged one is dropped and
            # re-converted from a healthy source below.  For .sgx the
            # bytes are fetched once and parsed in memory, so the later
            # version probe costs no second disk read.
            raw = None
            try:
                if to_format == "sgx":
                    _fmt, raw = lake.read_extract_bytes(key, principal=principal, fmt="sgx")
                    target = columnar.frame_from_sgx_bytes(raw, None)
                else:
                    target = _read_stored_frame(lake, key, to_format, principal)
            except ValueError as exc:
                if len(formats) == 1:
                    raise ConversionVerificationError(
                        f"stored .{to_format} copy of {key} is unreadable and no "
                        f"other format exists to re-convert it from: {exc}"
                    ) from exc
                lake.delete_extract(key, principal=principal, fmt=to_format)
                formats = tuple(fmt for fmt in formats if fmt != to_format)
            else:
                upgrade_record = None
                if to_format == "sgx" and (
                    columnar.sgx_version(raw) != columnar.VERSION or chunk_minutes is not None
                ):
                    # An older-version (or differently chunked, when the
                    # policy is forced) .sgx copy is not "already
                    # current": re-encode it in place.
                    upgrade_record = _upgrade_sgx_in_place(
                        lake, key, target, raw, verify, chunk_minutes, principal
                    )
                # With ``delete_source`` the leftover source copies (e.g.
                # from an earlier run without the flag) still have to go,
                # after the same lossless check.
                leftovers = [fmt for fmt in formats if fmt != to_format]
                freed = 0
                if delete_source and leftovers:
                    if verify:
                        for leftover in leftovers:
                            source = _read_stored_frame(lake, key, leftover, principal)
                            if source.content_hash() != target.content_hash():
                                raise ConversionVerificationError(
                                    f"existing .{to_format} copy of {key} disagrees with "
                                    f"its .{leftover} copy; refusing to delete the source"
                                )
                    for leftover in leftovers:
                        freed += lake.extract_size_bytes(key, principal=principal, fmt=leftover)
                        lake.delete_extract(key, principal=principal, fmt=leftover)
                deleted = tuple(leftovers) if delete_source and leftovers else ()
                record = (
                    replace(upgrade_record, deleted_formats=deleted, bytes_freed=freed)
                    if upgrade_record is not None
                    else ConversionRecord(
                        key=key,
                        source_format=to_format,
                        target_format=to_format,
                        rows=0,
                        bytes_in=0,
                        bytes_out=0,
                        skipped=True,
                        deleted_formats=deleted,
                        bytes_freed=freed,
                    )
                )
                report.records.append(record)
                continue
        source_format = formats[0]
        bytes_in = lake.extract_size_bytes(key, principal=principal, fmt=source_format)
        frame = _read_stored_frame(lake, key, source_format, principal)
        if to_format == "csv":
            # The row-oriented CSV schema cannot represent a server with
            # zero samples; converting would silently drop its metadata.
            # Refuse before writing anything so the source stays intact.
            empty = [sid for sid, _metadata, series in frame.items() if series.is_empty]
            if empty:
                raise ConversionVerificationError(
                    f"extract for {key} holds server(s) with no samples "
                    f"({', '.join(empty[:3])}{'...' if len(empty) > 3 else ''}); "
                    "the CSV schema cannot represent them -- keeping the "
                    f".{source_format} copy"
                )
            if frame.interval_minutes != DEFAULT_INTERVAL_MINUTES:
                # Guarded even with verify=False: CSV carries no interval
                # column, so the recorded interval would be irrecoverable.
                raise ConversionVerificationError(
                    f"extract for {key} records a {frame.interval_minutes}-minute "
                    "sampling interval; the CSV schema cannot carry it -- "
                    f"keeping the .{source_format} copy"
                )
        rows = lake.write_extract(
            key,
            frame,
            principal=principal,
            fmt=to_format,
            keep_other_formats=True,
            chunk_minutes=chunk_minutes,
        )
        if verify:
            round_tripped = _read_stored_frame(lake, key, to_format, principal)
            if round_tripped.content_hash() != frame.content_hash():
                lake.delete_extract(key, principal=principal, fmt=to_format)
                detail = ""
                if round_tripped.interval_minutes != frame.interval_minutes:
                    detail = (
                        f" (the .{to_format} schema cannot represent its "
                        f"{frame.interval_minutes}-minute sampling interval)"
                    )
                raise ConversionVerificationError(
                    f"converted extract for {key} does not round-trip losslessly"
                    f"{detail}; source .{source_format} kept"
                )
        bytes_out = lake.extract_size_bytes(key, principal=principal, fmt=to_format)
        if delete_source:
            lake.delete_extract(key, principal=principal, fmt=source_format)
        report.records.append(
            ConversionRecord(
                key=key,
                source_format=source_format,
                target_format=to_format,
                rows=rows,
                bytes_in=bytes_in,
                bytes_out=bytes_out,
                deleted_formats=(source_format,) if delete_source else (),
                bytes_freed=bytes_in if delete_source else 0,
            )
        )
    return report
