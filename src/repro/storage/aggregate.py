"""Decode-free aggregation over extract chunks: the merge core.

Fleet-wide rollups (the Figure 12a/13-style runtime and load summaries)
used to decode every value buffer just to compute a handful of
reductions.  ``.sgx`` format v4 stores per-chunk, per-column
pre-aggregates (count / sum / min / max / sum-of-squares) in the chunk
table, so a chunk lying fully inside a query's time range and
server/engine scope can be *answered from its statistics* without its
payload ever being read -- the same pre-computed-annotation move that
replaces full traversals with window-function lookups in DMR-XPath.

This module owns the algebra that makes mixing the two sources exact:

* :class:`GroupState` accumulates one group's running moments.  Mean and
  variance are kept as ``(count, mean, M2)`` and merged with the pairwise
  (Chan et al.) update -- the parallel generalisation of Welford's
  algorithm -- so folding chunk statistics, folding decoded arrays and
  merging partial accumulators all agree to floating-point accuracy,
  independent of fold order.
* :class:`AggregateAccumulator` maps group keys (``server`` and/or
  absolute ``day``) to states and knows how to fold decoded column
  arrays (splitting at day boundaries when the grouping asks for it),
  fold stored chunk statistics, and merge whole accumulators (which is
  what lets a per-extract fold be discarded wholesale when a damaged
  ``.sgx`` copy degrades to its CSV sibling mid-walk).

Results are NaN-free by construction: a group only exists once at least
one sample folded into it, so ``min``/``max``/``mean`` are always
defined, and an empty scope yields an empty mapping rather than rows of
NaN.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.timeseries.calendar import MINUTES_PER_DAY

#: Reductions a query may request, in canonical (output) order.
#: ``count`` needs no value bytes at all -- a count-only aggregate is
#: answered from chunk headers on *every* format version; the rest need
#: the v4 value statistics (or a decode).
AGGREGATE_REDUCTIONS = ("count", "sum", "min", "max", "mean", "variance", "std")

#: Grouping keys a query may ask for, in canonical order.  ``server``
#: groups by server id (decided from the record header alone); ``day``
#: groups by absolute day index (``minute // 1440``), which chunk
#: statistics can answer whenever a chunk does not straddle a day
#: boundary -- the writer's default per-day chunking guarantees exactly
#: that.
AGGREGATE_GROUP_KEYS = ("server", "day")


def check_reductions(aggregates: Iterable[str] | str) -> tuple[str, ...]:
    """Validate and canonicalise a reduction list (sorted, deduplicated)."""
    names = (aggregates,) if isinstance(aggregates, str) else tuple(aggregates)
    unknown = [name for name in names if name not in AGGREGATE_REDUCTIONS]
    if unknown:
        raise ValueError(
            f"unknown aggregate reduction(s) {unknown!r}; "
            f"expected a subset of {AGGREGATE_REDUCTIONS}"
        )
    if not names:
        raise ValueError("aggregates must name at least one reduction")
    return tuple(name for name in AGGREGATE_REDUCTIONS if name in names)


def check_group_by(group_by: Iterable[str] | str) -> tuple[str, ...]:
    """Validate and canonicalise a grouping list."""
    names = (group_by,) if isinstance(group_by, str) else tuple(group_by)
    unknown = [name for name in names if name not in AGGREGATE_GROUP_KEYS]
    if unknown:
        raise ValueError(
            f"unknown group_by key(s) {unknown!r}; "
            f"expected a subset of {AGGREGATE_GROUP_KEYS}"
        )
    return tuple(name for name in AGGREGATE_GROUP_KEYS if name in names)


def values_needed(aggregates: Iterable[str]) -> bool:
    """Whether these reductions need value statistics (or value bytes).

    ``count`` alone is answered from chunk headers (``n_points`` plus the
    zone map), which every supported format version carries.
    """
    return any(name != "count" for name in aggregates)


class GroupState:
    """Running aggregate moments of one group.

    ``total``/``minimum``/``maximum`` fold directly; the second moment is
    kept as ``(count, mean, m2)`` and combined with the pairwise update
    so merge order cannot change the answer beyond float rounding.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.mean = 0.0
        self.m2 = 0.0

    # -------------------------------------------------------------- #

    def _merge_moments(self, count: int, mean: float, m2: float) -> None:
        """Chan et al. pairwise combination of ``(count, mean, M2)``."""
        if count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = count, mean, m2
            return
        combined = self.count + count
        delta = mean - self.mean
        self.mean += delta * (count / combined)
        self.m2 += m2 + delta * delta * (self.count * count / combined)
        self.count = combined

    def fold_count(self, count: int) -> None:
        """Fold a bare sample count (count-only aggregates)."""
        self.count += count

    def fold_stats(
        self, count: int, total: float, minimum: float, maximum: float, sum_sq: float
    ) -> None:
        """Fold one chunk's stored pre-aggregates without any payload."""
        if count == 0:
            return
        mean = total / count
        # M2 = sum_sq - count * mean^2; clamp the cancellation residue so a
        # constant chunk can never fold a tiny negative variance.
        m2 = max(sum_sq - total * mean, 0.0)
        self.total += total
        self.minimum = min(self.minimum, minimum)
        self.maximum = max(self.maximum, maximum)
        self._merge_moments(count, mean, m2)

    def fold_array(self, values: np.ndarray) -> None:
        """Fold decoded value samples (the row path / partial chunks)."""
        count = int(values.shape[0])
        if count == 0:
            return
        mean = float(values.mean())
        self.total += float(values.sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))
        deltas = values - mean
        self._merge_moments(count, mean, float(np.dot(deltas, deltas)))

    def merge(self, other: "GroupState") -> None:
        """Fold another partial state into this one (exact pairwise merge)."""
        if other.count == 0:
            return
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self._merge_moments(other.count, other.mean, other.m2)

    # -------------------------------------------------------------- #

    def result(self, reductions: Iterable[str]) -> dict[str, float | int]:
        """The requested reductions of this group.

        Only called for groups that received at least one sample, so
        every reduction is well-defined (``variance`` is the population
        variance, ``ddof=0``).
        """
        out: dict[str, float | int] = {}
        for name in reductions:
            if name == "count":
                out[name] = self.count
            elif name == "sum":
                out[name] = self.total
            elif name == "min":
                out[name] = self.minimum
            elif name == "max":
                out[name] = self.maximum
            elif name == "mean":
                out[name] = self.mean
            elif name == "variance":
                out[name] = self.m2 / self.count if self.count else 0.0
            elif name == "std":
                out[name] = math.sqrt(self.m2 / self.count) if self.count else 0.0
        return out


class AggregateAccumulator:
    """Group keys -> :class:`GroupState`, plus the folding strategies.

    Group keys are tuples of the ``group_by`` values in canonical order
    (``server`` before ``day``); the global aggregate uses the empty
    tuple.  The accumulator is what every source folds into -- stored
    chunk statistics, decoded ``.sgx`` slices and parsed CSV series all
    meet here, which is what makes the merged answer exact.
    """

    def __init__(self, aggregates: Iterable[str], group_by: Iterable[str] | None) -> None:
        self.aggregates = check_reductions(aggregates)
        self.group_by = check_group_by(group_by) if group_by is not None else ()
        #: Whether folds need value data (False: count-only, answerable
        #: from chunk headers on any format version).
        self.values_needed = values_needed(self.aggregates)
        self.by_day = "day" in self.group_by
        self._groups: dict[tuple, GroupState] = {}

    def __len__(self) -> int:
        return len(self._groups)

    def group_key(self, server_id: str, day: int | None = None) -> tuple:
        key: list = []
        for name in self.group_by:
            if name == "server":
                key.append(server_id)
            elif name == "day":
                key.append(day)
        return tuple(key)

    def state(self, server_id: str, day: int | None = None) -> GroupState:
        key = self.group_key(server_id, day)
        state = self._groups.get(key)
        if state is None:
            state = self._groups[key] = GroupState()
        return state

    # -------------------------------------------------------------- #

    def fold_chunk_stats(
        self,
        server_id: str,
        day: int,
        count: int,
        total: float,
        minimum: float,
        maximum: float,
        sum_sq: float,
    ) -> None:
        """Fold one chunk's stored statistics (the decode-free path)."""
        if count == 0:
            return
        state = self.state(server_id, day)
        if self.values_needed:
            state.fold_stats(count, total, minimum, maximum, sum_sq)
        else:
            state.fold_count(count)

    def fold_columns(
        self, server_id: str, timestamps: np.ndarray, values: np.ndarray | None
    ) -> None:
        """Fold decoded column arrays, splitting at day boundaries when
        the grouping requires it.

        ``values`` may be ``None`` only for count-only aggregates.
        ``timestamps`` must already be cut to the query's time range
        (they are sorted, so the day split is a boundary walk).
        """
        n = int(timestamps.shape[0])
        if n == 0:
            return
        if not self.by_day:
            state = self.state(server_id)
            if self.values_needed:
                assert values is not None
                state.fold_array(values)
            else:
                state.fold_count(n)
            return
        days = timestamps // MINUTES_PER_DAY
        cuts = np.flatnonzero(np.diff(days)) + 1
        prev = 0
        for cut in [*cuts.tolist(), n]:
            state = self.state(server_id, int(days[prev]))
            if self.values_needed:
                assert values is not None
                state.fold_array(values[prev:cut])
            else:
                state.fold_count(cut - prev)
            prev = cut

    def merge(self, other: "AggregateAccumulator") -> None:
        """Fold a partial accumulator (e.g. one extract's) into this one."""
        for key, state in other._groups.items():
            mine = self._groups.get(key)
            if mine is None:
                mine = self._groups[key] = GroupState()
            mine.merge(state)

    def spawn(self) -> "AggregateAccumulator":
        """A fresh, empty accumulator with the same reductions/grouping.

        Per-extract folds go into a spawned accumulator first and are
        merged on success, so a damaged ``.sgx`` copy discovered mid-walk
        can be discarded wholesale before the CSV fallback re-folds.
        """
        return AggregateAccumulator(self.aggregates, self.group_by)

    # -------------------------------------------------------------- #

    def results(self) -> dict[tuple, dict[str, float | int]]:
        """Finalised reductions per group key, sorted by key.

        Every group present received at least one sample, so no entry can
        hold NaN; an empty scope is an empty mapping.
        """
        return {
            key: self._groups[key].result(self.aggregates)
            for key in sorted(self._groups)
        }


__all__ = [
    "AGGREGATE_GROUP_KEYS",
    "AGGREGATE_REDUCTIONS",
    "AggregateAccumulator",
    "GroupState",
    "check_group_by",
    "check_reductions",
    "values_needed",
]
