"""Feed-forward neural network forecaster (the GluonTS stand-in).

The paper trains GluonTS's "simple feed forward estimator".  This module
implements the same model class on numpy: a two-hidden-layer MLP that maps
a context window of past load onto the next prediction chunk, trained with
mini-batch Adam on sliding windows drawn from the server's history.  The
forecast for a full day is produced by rolling the model forward chunk by
chunk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import Forecaster, ForecastError
from repro.timeseries.calendar import points_per_day
from repro.timeseries.series import LoadSeries


@dataclass(frozen=True)
class FeedForwardConfig:
    """Hyper-parameters of the feed-forward forecaster."""

    context_points: int | None = None    # default: one day of samples
    prediction_points: int | None = None  # default: a quarter day per chunk
    hidden_units: int = 48
    epochs: int = 12
    batch_size: int = 32
    learning_rate: float = 1e-3
    l2: float = 1e-5
    seed: int = 13


class _Mlp:
    """Minimal two-hidden-layer MLP with Adam, operating on float64 arrays."""

    def __init__(self, n_in: int, n_hidden: int, n_out: int, rng: np.random.Generator) -> None:
        scale1 = np.sqrt(2.0 / n_in)
        scale2 = np.sqrt(2.0 / n_hidden)
        self.w1 = rng.normal(0.0, scale1, (n_in, n_hidden))
        self.b1 = np.zeros(n_hidden)
        self.w2 = rng.normal(0.0, scale2, (n_hidden, n_hidden))
        self.b2 = np.zeros(n_hidden)
        self.w3 = rng.normal(0.0, scale2, (n_hidden, n_out))
        self.b3 = np.zeros(n_out)
        self._adam_state = {name: (np.zeros_like(param), np.zeros_like(param))
                            for name, param in self._params().items()}
        self._adam_step = 0

    def _params(self) -> dict[str, np.ndarray]:
        return {
            "w1": self.w1, "b1": self.b1,
            "w2": self.w2, "b2": self.b2,
            "w3": self.w3, "b3": self.b3,
        }

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, tuple]:
        z1 = x @ self.w1 + self.b1
        a1 = np.maximum(z1, 0.0)
        z2 = a1 @ self.w2 + self.b2
        a2 = np.maximum(z2, 0.0)
        out = a2 @ self.w3 + self.b3
        return out, (x, z1, a1, z2, a2)

    def backward(self, grad_out: np.ndarray, cache: tuple, l2: float) -> dict[str, np.ndarray]:
        x, z1, a1, z2, a2 = cache
        grads: dict[str, np.ndarray] = {}
        grads["w3"] = a2.T @ grad_out + l2 * self.w3
        grads["b3"] = grad_out.sum(axis=0)
        da2 = grad_out @ self.w3.T
        dz2 = da2 * (z2 > 0)
        grads["w2"] = a1.T @ dz2 + l2 * self.w2
        grads["b2"] = dz2.sum(axis=0)
        da1 = dz2 @ self.w2.T
        dz1 = da1 * (z1 > 0)
        grads["w1"] = x.T @ dz1 + l2 * self.w1
        grads["b1"] = dz1.sum(axis=0)
        return grads

    def adam_update(self, grads: dict[str, np.ndarray], lr: float) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam_step += 1
        step = self._adam_step
        for name, param in self._params().items():
            m, v = self._adam_state[name]
            grad = grads[name]
            m[:] = beta1 * m + (1 - beta1) * grad
            v[:] = beta2 * v + (1 - beta2) * grad * grad
            m_hat = m / (1 - beta1 ** step)
            v_hat = v / (1 - beta2 ** step)
            param -= lr * m_hat / (np.sqrt(v_hat) + eps)


class FeedForwardForecaster(Forecaster):
    """Windowed MLP forecaster trained on a single server's history."""

    name = "feedforward"

    def __init__(self, config: FeedForwardConfig | None = None) -> None:
        super().__init__()
        self._config = config if config is not None else FeedForwardConfig()
        self._mlp: _Mlp | None = None
        self._mean = 0.0
        self._scale = 1.0
        self._context = 0
        self._chunk = 0

    @property
    def config(self) -> FeedForwardConfig:
        return self._config

    def _fit(self, history: LoadSeries) -> None:
        cfg = self._config
        points_day = points_per_day(history.interval_minutes)
        self._context = cfg.context_points if cfg.context_points is not None else points_day
        self._chunk = cfg.prediction_points if cfg.prediction_points is not None else max(1, points_day // 4)

        values = history.values.astype(np.float64)
        if values.shape[0] < self._context + self._chunk:
            raise ForecastError(
                f"{self.name}: need at least {self._context + self._chunk} points, "
                f"got {values.shape[0]}"
            )
        self._mean = float(values.mean())
        self._scale = float(values.std()) or 1.0
        normalized = (values - self._mean) / self._scale

        n_samples = values.shape[0] - self._context - self._chunk + 1
        stride = max(1, n_samples // 512)  # cap the training set for scalability
        starts = np.arange(0, n_samples, stride)
        inputs = np.stack([normalized[s : s + self._context] for s in starts])
        targets = np.stack(
            [normalized[s + self._context : s + self._context + self._chunk] for s in starts]
        )

        rng = np.random.default_rng(cfg.seed)
        self._mlp = _Mlp(self._context, cfg.hidden_units, self._chunk, rng)

        n = inputs.shape[0]
        for _ in range(cfg.epochs):
            order = rng.permutation(n)
            for start in range(0, n, cfg.batch_size):
                batch = order[start : start + cfg.batch_size]
                x, y = inputs[batch], targets[batch]
                prediction, cache = self._mlp.forward(x)
                grad = 2.0 * (prediction - y) / x.shape[0]
                grads = self._mlp.backward(grad, cache, cfg.l2)
                self._mlp.adam_update(grads, cfg.learning_rate)

    def _predict_values(self, n_points: int) -> np.ndarray:
        assert self._mlp is not None and self._history is not None
        normalized_history = (self._history.values - self._mean) / self._scale
        context = normalized_history[-self._context :].copy()
        if context.shape[0] < self._context:
            context = np.concatenate(
                [np.full(self._context - context.shape[0], normalized_history.mean()), context]
            )
        outputs: list[np.ndarray] = []
        produced = 0
        while produced < n_points:
            chunk, _ = self._mlp.forward(context[None, :])
            chunk = chunk[0]
            outputs.append(chunk)
            produced += chunk.shape[0]
            context = np.concatenate([context, chunk])[-self._context :]
        forecast = np.concatenate(outputs)[:n_points]
        return forecast * self._scale + self._mean
