"""Additive trend + seasonality forecaster (the Prophet stand-in).

Prophet fits an additive model of a piecewise-linear trend plus Fourier
seasonalities.  This module reproduces that decomposition with ridge
regression on a design matrix of changepoint-hinge trend features and
daily/weekly Fourier features, selecting the regularisation strength and
changepoint flexibility on a hold-out tail of the history.  The
hyper-parameter search makes the model noticeably more expensive than SSA
or the feed-forward network, matching the scalability ordering the paper
observed (Prophet slowest, Section 5.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.base import Forecaster, ForecastError
from repro.timeseries.calendar import MINUTES_PER_DAY, MINUTES_PER_WEEK
from repro.timeseries.series import LoadSeries


@dataclass(frozen=True)
class SeasonalConfig:
    """Hyper-parameters of the additive seasonal forecaster."""

    daily_order: int = 8
    weekly_order: int = 3
    n_changepoints: int = 12
    ridge_candidates: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0)
    changepoint_candidates: tuple[int, ...] = (0, 6, 12, 25)
    holdout_fraction: float = 0.2


class SeasonalAdditiveForecaster(Forecaster):
    """Piecewise-linear trend plus daily/weekly Fourier seasonality."""

    name = "seasonal_additive"

    def __init__(self, config: SeasonalConfig | None = None) -> None:
        super().__init__()
        self._config = config if config is not None else SeasonalConfig()
        self._coefficients: np.ndarray | None = None
        self._changepoints: np.ndarray = np.empty(0)
        self._t_scale = 1.0
        self._t_offset = 0.0
        self._selected: dict[str, float] = {}

    @property
    def config(self) -> SeasonalConfig:
        return self._config

    @property
    def selected_hyperparameters(self) -> dict[str, float]:
        """The ridge strength and changepoint count chosen on the hold-out."""
        return dict(self._selected)

    # ------------------------------------------------------------------ #
    # Design matrix
    # ------------------------------------------------------------------ #

    def _design(self, timestamps: np.ndarray, changepoints: np.ndarray) -> np.ndarray:
        cfg = self._config
        t = (timestamps - self._t_offset) / self._t_scale
        columns: list[np.ndarray] = [np.ones_like(t), t]
        for changepoint in changepoints:
            columns.append(np.maximum(t - changepoint, 0.0))
        day_phase = 2.0 * np.pi * (timestamps % MINUTES_PER_DAY) / MINUTES_PER_DAY
        for order in range(1, cfg.daily_order + 1):
            columns.append(np.sin(order * day_phase))
            columns.append(np.cos(order * day_phase))
        week_phase = 2.0 * np.pi * (timestamps % MINUTES_PER_WEEK) / MINUTES_PER_WEEK
        for order in range(1, cfg.weekly_order + 1):
            columns.append(np.sin(order * week_phase))
            columns.append(np.cos(order * week_phase))
        return np.column_stack(columns)

    @staticmethod
    def _ridge_fit(design: np.ndarray, target: np.ndarray, alpha: float) -> np.ndarray:
        gram = design.T @ design
        gram += alpha * np.eye(gram.shape[0])
        return np.linalg.solve(gram, design.T @ target)

    def _make_changepoints(self, n_changepoints: int) -> np.ndarray:
        if n_changepoints <= 0:
            return np.empty(0)
        # Changepoints on the first 80% of the (normalised) training range,
        # matching Prophet's default behaviour.
        return np.linspace(0.0, 0.8, n_changepoints + 2)[1:-1]

    # ------------------------------------------------------------------ #
    # Forecaster hooks
    # ------------------------------------------------------------------ #

    def _fit(self, history: LoadSeries) -> None:
        cfg = self._config
        timestamps = history.timestamps.astype(np.float64)
        values = history.values.astype(np.float64)
        if values.shape[0] < 4:
            raise ForecastError(f"{self.name}: history too short")

        self._t_offset = float(timestamps[0])
        self._t_scale = max(float(timestamps[-1] - timestamps[0]), 1.0)

        holdout = max(1, int(cfg.holdout_fraction * values.shape[0]))
        train_ts, train_vs = timestamps[:-holdout], values[:-holdout]
        valid_ts, valid_vs = timestamps[-holdout:], values[-holdout:]
        if train_vs.shape[0] < 4:
            train_ts, train_vs = timestamps, values
            valid_ts, valid_vs = timestamps, values

        best = (float("inf"), cfg.ridge_candidates[0], cfg.changepoint_candidates[0])
        for n_changepoints in cfg.changepoint_candidates:
            changepoints = self._make_changepoints(n_changepoints)
            train_design = self._design(train_ts, changepoints)
            valid_design = self._design(valid_ts, changepoints)
            for alpha in cfg.ridge_candidates:
                coefficients = self._ridge_fit(train_design, train_vs, alpha)
                error = float(np.mean((valid_design @ coefficients - valid_vs) ** 2))
                if error < best[0]:
                    best = (error, alpha, n_changepoints)

        _, alpha, n_changepoints = best
        self._selected = {"alpha": alpha, "n_changepoints": float(n_changepoints)}
        self._changepoints = self._make_changepoints(n_changepoints)
        full_design = self._design(timestamps, self._changepoints)
        self._coefficients = self._ridge_fit(full_design, values, alpha)

    def _predict_values(self, n_points: int) -> np.ndarray:
        assert self._coefficients is not None and self._history is not None
        interval = self._history.interval_minutes
        start = self._history.end + interval
        future_ts = start + np.arange(n_points, dtype=np.float64) * interval
        design = self._design(future_ts, self._changepoints)
        return design @ self._coefficients
