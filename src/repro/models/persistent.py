"""Persistent forecast (Section 5.1).

Persistent forecast replicates previously seen load as the forecast.  The
paper compares three variants and deploys the previous-day variant to
production (Section 5.4):

* *previous week average* -- predict the server's average load over the
  previous week (suits stable servers, Definition 4);
* *previous equivalent day* -- replicate the load of the same weekday one
  week ago (captures weekly patterns, Definition 6);
* *previous day* -- replicate yesterday's load (captures daily patterns,
  Definition 5, and covers the largest share of servers).

None of these require training, which is why persistent forecast "does not
introduce any computational delay due to training and thus scales better
than other models".
"""

from __future__ import annotations

import enum

import numpy as np

from repro.models.base import Forecaster, ForecastError
from repro.timeseries.calendar import MINUTES_PER_DAY, MINUTES_PER_WEEK, points_per_day
from repro.timeseries.series import LoadSeries


class PersistentForecastVariant(enum.Enum):
    """The three persistent-forecast variants compared in Section 5.1."""

    PREVIOUS_DAY = "previous_day"
    PREVIOUS_EQUIVALENT_DAY = "previous_equivalent_day"
    PREVIOUS_WEEK_AVERAGE = "previous_week_average"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class _PersistentBase(Forecaster):
    """Shared logic: no training, replicate a reference slice of history."""

    requires_training = False

    #: Lag (in minutes) of the reference slice replicated into the future.
    lag_minutes: int = MINUTES_PER_DAY

    def _fit(self, history: LoadSeries) -> None:
        minimum = self.lag_minutes // history.interval_minutes
        if len(history) < minimum:
            raise ForecastError(
                f"{self.name}: needs at least {minimum} points "
                f"({self.lag_minutes} minutes) of history, got {len(history)}"
            )

    def _reference_values(self, n_points: int) -> np.ndarray:
        """Values of the history slice that gets replicated forward."""
        assert self._history is not None
        history = self._history
        interval = history.interval_minutes
        horizon_start = history.end + interval
        reference_start = horizon_start - self.lag_minutes
        reference = history.slice(reference_start, reference_start + n_points * interval)
        values = reference.values
        if values.shape[0] == 0:
            raise ForecastError(f"{self.name}: no history in the reference window")
        if values.shape[0] < n_points:
            # The reference window is shorter than the horizon (for example a
            # 2-day forecast from the previous-day variant): tile it.
            repeats = -(-n_points // values.shape[0])
            values = np.tile(values, repeats)
        return values[:n_points].astype(np.float64, copy=True)

    def _predict_values(self, n_points: int) -> np.ndarray:
        return self._reference_values(n_points)


class PreviousDayForecaster(_PersistentBase):
    """Replicate yesterday's load as today's forecast (deployed variant)."""

    name = "persistent_previous_day"
    lag_minutes = MINUTES_PER_DAY


class PreviousEquivalentDayForecaster(_PersistentBase):
    """Replicate the load of the same weekday one week earlier."""

    name = "persistent_previous_equivalent_day"
    lag_minutes = MINUTES_PER_WEEK


class PreviousWeekAverageForecaster(Forecaster):
    """Predict the average load of the previous week for every future point."""

    name = "persistent_previous_week_average"
    requires_training = False

    def __init__(self) -> None:
        super().__init__()
        self._weekly_mean: float = float("nan")

    def _fit(self, history: LoadSeries) -> None:
        points_day = points_per_day(history.interval_minutes)
        if len(history) < points_day:
            raise ForecastError(
                f"{self.name}: needs at least one day of history, got {len(history)} points"
            )
        last_week = history.last_days(7)
        self._weekly_mean = last_week.mean()

    def _predict_values(self, n_points: int) -> np.ndarray:
        return np.full(n_points, self._weekly_mean, dtype=np.float64)


def make_persistent_forecaster(
    variant: PersistentForecastVariant | str = PersistentForecastVariant.PREVIOUS_DAY,
) -> Forecaster:
    """Construct the requested persistent-forecast variant."""
    if isinstance(variant, str):
        variant = PersistentForecastVariant(variant)
    if variant is PersistentForecastVariant.PREVIOUS_DAY:
        return PreviousDayForecaster()
    if variant is PersistentForecastVariant.PREVIOUS_EQUIVALENT_DAY:
        return PreviousEquivalentDayForecaster()
    return PreviousWeekAverageForecaster()
