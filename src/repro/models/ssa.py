"""Singular Spectrum Analysis forecaster (the NimbusML stand-in).

NimbusML's contribution to the paper's comparison is its
``SsaForecaster`` transform.  SSA decomposes the trajectory (Hankel) matrix
of the series with an SVD, keeps the leading components and forecasts with
the linear recurrence implied by the retained subspace.  This file
implements the classic "Basic SSA + recurrent forecasting" algorithm on
numpy.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Forecaster, ForecastError
from repro.timeseries.calendar import points_per_day
from repro.timeseries.series import LoadSeries


def _hankel(values: np.ndarray, window: int) -> np.ndarray:
    """Trajectory matrix with ``window`` rows and ``N - window + 1`` columns."""
    n = values.shape[0]
    k = n - window + 1
    indices = np.arange(window)[:, None] + np.arange(k)[None, :]
    return values[indices]


def _diagonal_average(matrix: np.ndarray) -> np.ndarray:
    """Average the anti-diagonals of a trajectory matrix back into a series."""
    window, k = matrix.shape
    n = window + k - 1
    reconstructed = np.zeros(n)
    counts = np.zeros(n)
    for row in range(window):
        reconstructed[row : row + k] += matrix[row]
        counts[row : row + k] += 1.0
    return reconstructed / counts


class SsaForecaster(Forecaster):
    """Recurrent SSA forecaster.

    Parameters
    ----------
    window_points:
        Embedding window length.  Defaults to one day of samples, which
        captures the diurnal structure the backup scheduler cares about.
    rank:
        Number of leading singular components retained.  Defaults to 8,
        enough for a trend plus a few harmonics.
    """

    name = "ssa"

    def __init__(self, window_points: int | None = None, rank: int = 8) -> None:
        super().__init__()
        if rank < 1:
            raise ValueError("rank must be at least 1")
        self._requested_window = window_points
        self._rank = rank
        self._recurrence: np.ndarray | None = None
        self._reconstructed_tail: np.ndarray | None = None

    def _fit(self, history: LoadSeries) -> None:
        values = history.values.astype(np.float64)
        n = values.shape[0]
        default_window = points_per_day(history.interval_minutes)
        window = self._requested_window if self._requested_window is not None else default_window
        window = int(min(window, n // 2))
        if window < 2:
            raise ForecastError(
                f"{self.name}: history too short for SSA (got {n} points)"
            )
        rank = int(min(self._rank, window - 1))

        trajectory = _hankel(values, window)
        u, s, vt = np.linalg.svd(trajectory, full_matrices=False)
        u_r = u[:, :rank]
        s_r = s[:rank]
        vt_r = vt[:rank, :]

        # Linear recurrence coefficients from the retained left singular vectors.
        pi = u_r[-1, :]
        nu_sq = float(np.dot(pi, pi))
        if nu_sq >= 1.0 - 1e-10:
            raise ForecastError(f"{self.name}: series is not forecastable (verticality ~ 1)")
        self._recurrence = (u_r[:-1, :] @ pi) / (1.0 - nu_sq)

        approx = (u_r * s_r) @ vt_r
        reconstructed = _diagonal_average(approx)
        self._reconstructed_tail = reconstructed[-(window - 1):].copy()

    def _predict_values(self, n_points: int) -> np.ndarray:
        assert self._recurrence is not None and self._reconstructed_tail is not None
        lag = self._recurrence.shape[0]
        buffer = np.concatenate([self._reconstructed_tail, np.zeros(n_points)])
        for step in range(n_points):
            window = buffer[step : step + lag]
            buffer[lag + step] = float(np.dot(self._recurrence, window))
        return buffer[lag:]
