"""Name-based model construction (the "any ML model can be plugged in" knob).

The pipeline configuration refers to models by name; this registry maps
those names to constructors and records the display names used in the
paper's figures (Persistent Forecast, Nimbus, Gluon, Prophet, ARIMA).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.models.arima import ArimaForecaster
from repro.models.base import Forecaster
from repro.models.feedforward import FeedForwardForecaster
from repro.models.persistent import (
    PreviousDayForecaster,
    PreviousEquivalentDayForecaster,
    PreviousWeekAverageForecaster,
)
from repro.models.seasonal import SeasonalAdditiveForecaster
from repro.models.ssa import SsaForecaster

_REGISTRY: dict[str, Callable[[], Forecaster]] = {
    "persistent_previous_day": PreviousDayForecaster,
    "persistent_previous_equivalent_day": PreviousEquivalentDayForecaster,
    "persistent_previous_week_average": PreviousWeekAverageForecaster,
    "ssa": SsaForecaster,
    "feedforward": FeedForwardForecaster,
    "seasonal_additive": SeasonalAdditiveForecaster,
    "arima": ArimaForecaster,
}

#: Shorthand aliases accepted by :func:`create_forecaster`.
_ALIASES: dict[str, str] = {
    "persistent": "persistent_previous_day",
    "pf": "persistent_previous_day",
    "previous_day": "persistent_previous_day",
    "previous_equivalent_day": "persistent_previous_equivalent_day",
    "previous_week_average": "persistent_previous_week_average",
    "nimbus": "ssa",
    "nimbusml": "ssa",
    "gluon": "feedforward",
    "gluonts": "feedforward",
    "prophet": "seasonal_additive",
}

#: Display names matching the legends of Figures 11, 16 and 17.
MODEL_DISPLAY_NAMES: dict[str, str] = {
    "persistent_previous_day": "Persistent Forecast (PF)",
    "persistent_previous_equivalent_day": "Persistent Forecast (prev. equivalent day)",
    "persistent_previous_week_average": "Persistent Forecast (prev. week average)",
    "ssa": "Nimbus (SSA)",
    "feedforward": "Gluon (feed-forward)",
    "seasonal_additive": "Prophet (additive seasonal)",
    "arima": "ARIMA",
}


class UnknownModelError(LookupError):
    """Raised when a model name is not present in the registry.

    Derives from :class:`LookupError` rather than :class:`KeyError`:
    ``KeyError.__str__`` renders its message through ``repr`` (wrapping it
    in quotes), which made ``str(err)`` unusable in user-facing output.
    """


def canonical_name(name: str) -> str:
    """Resolve aliases to the canonical registry name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise UnknownModelError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}; "
            f"accepted aliases: {sorted(_ALIASES)}"
        )
    return key


def create_forecaster(name: str) -> Forecaster:
    """Construct a forecaster by (possibly aliased) name."""
    return _REGISTRY[canonical_name(name)]()


def available_models() -> list[str]:
    """Canonical names of all registered models."""
    return sorted(_REGISTRY)


def register_model(name: str, factory: Callable[[], Forecaster], overwrite: bool = False) -> None:
    """Register a custom model so the pipeline can use it by name.

    This is the extension point for "any ML model can be plugged in"
    (Section 2.1): downstream users register a factory and reference the
    name in their pipeline configuration.
    """
    key = name.strip().lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"model {name!r} is already registered")
    _REGISTRY[key] = factory
