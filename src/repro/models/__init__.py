"""Forecasting models (Section 5.1).

The paper compares simple heuristics against ML models for predicting the
next day of per-server load:

* :mod:`~repro.models.persistent` -- the three persistent-forecast variants
  (previous day, previous equivalent day, previous-week average).
* :mod:`~repro.models.ssa` -- a Singular Spectrum Analysis forecaster, the
  stand-in for NimbusML's ``SsaForecaster``.
* :mod:`~repro.models.feedforward` -- a numpy feed-forward network, the
  stand-in for GluonTS's simple feed-forward estimator.
* :mod:`~repro.models.seasonal` -- an additive trend + seasonality model,
  the stand-in for Prophet.
* :mod:`~repro.models.arima` -- an ARIMA implementation with order search,
  kept to demonstrate why the paper excludes it on cost grounds.
* :mod:`~repro.models.registry` -- name-based model construction so any
  model can be "plugged in" to the pipeline (Section 2.1).
"""

from repro.models.base import FitResult, Forecaster, ForecastError
from repro.models.arima import ArimaForecaster
from repro.models.feedforward import FeedForwardForecaster
from repro.models.persistent import (
    PersistentForecastVariant,
    PreviousDayForecaster,
    PreviousEquivalentDayForecaster,
    PreviousWeekAverageForecaster,
    make_persistent_forecaster,
)
from repro.models.registry import MODEL_DISPLAY_NAMES, available_models, create_forecaster
from repro.models.seasonal import SeasonalAdditiveForecaster
from repro.models.ssa import SsaForecaster

__all__ = [
    "Forecaster",
    "FitResult",
    "ForecastError",
    "PersistentForecastVariant",
    "PreviousDayForecaster",
    "PreviousEquivalentDayForecaster",
    "PreviousWeekAverageForecaster",
    "make_persistent_forecaster",
    "SsaForecaster",
    "FeedForwardForecaster",
    "SeasonalAdditiveForecaster",
    "ArimaForecaster",
    "create_forecaster",
    "available_models",
    "MODEL_DISPLAY_NAMES",
]
