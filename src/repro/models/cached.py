"""Forecaster replaying a previously computed prediction.

When the fleet orchestrator's artifact cache hits, the model-training stage
is skipped entirely -- but the scoring endpoint still has to serve each
server's backup-day prediction.  :class:`PrecomputedForecaster` fills that
role: it wraps the cached prediction series and serves it point-for-point,
so a cache-hit deployment returns the same values as the run that
originally fitted the models for every horizon up to the cached one.
(Longer horizons raise :class:`ForecastError` rather than silently
extrapolating -- a freshly fitted model could serve them, a cache
cannot.)
"""

from __future__ import annotations

import numpy as np

from repro.models.base import ForecastError, Forecaster
from repro.timeseries.series import LoadSeries


class PrecomputedForecaster(Forecaster):
    """Serves a fixed, previously computed prediction series.

    The forecaster is "born fitted": construction takes the prediction it
    will replay, and :meth:`predict` returns its leading ``n_points``
    samples.  Asking for more points than were cached raises
    :class:`ForecastError` (the cache never extrapolates).
    """

    name = "precomputed"
    requires_training = False

    def __init__(self, prediction: LoadSeries, source_model: str = "") -> None:
        super().__init__()
        if prediction.is_empty:
            raise ForecastError("cannot replay an empty prediction")
        self._prediction = prediction
        self._source_model = source_model

    @property
    def source_model(self) -> str:
        """Name of the model that originally produced the prediction."""
        return self._source_model

    @property
    def prediction(self) -> LoadSeries:
        """The full replayed series (the serving layer fingerprints it)."""
        return self._prediction

    def predict(self, n_points: int) -> LoadSeries:
        if n_points <= 0:
            raise ValueError("n_points must be positive")
        if n_points > len(self._prediction):
            raise ForecastError(
                f"precomputed prediction holds {len(self._prediction)} points, "
                f"{n_points} requested"
            )
        start = self._prediction.start
        end = start + n_points * self._prediction.interval_minutes
        return self._prediction.slice(start, end)

    # The base-class hooks are unused: the forecaster is constructed fitted
    # and refitting it would discard the cached prediction.
    def _fit(self, history: LoadSeries) -> None:
        raise ForecastError("a precomputed forecaster cannot be refit")

    def _predict_values(self, n_points: int) -> np.ndarray:  # pragma: no cover
        return self._prediction.values[:n_points]
