"""Forecaster interface shared by every model.

The pipeline's modularity requirement (Section 2.1: "any ML model can be
plugged in") translates here into a single abstract base class.  A model is
fit on a server's historical load and asked to predict a fixed number of
points immediately following the history; the prediction comes back as a
:class:`~repro.timeseries.series.LoadSeries` on the same grid, so every
metric and the backup scheduler can consume it unchanged.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from repro.timeseries.series import LoadSeries


class ForecastError(RuntimeError):
    """Raised when a model cannot be fit or cannot produce a forecast."""


class NotFittedError(ForecastError):
    """Raised when :meth:`Forecaster.predict` is called before :meth:`fit`."""


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting a model to one server's history."""

    model_name: str
    n_training_points: int
    fit_seconds: float
    details: dict[str, float] | None = None


class Forecaster(abc.ABC):
    """Base class for all load forecasters.

    Subclasses implement :meth:`_fit` and :meth:`_predict_values`; the base
    class handles bookkeeping (fit timing, grid construction, clipping to
    the valid CPU range).
    """

    #: Short machine name of the model (overridden by subclasses).
    name: str = "forecaster"

    #: Whether the model has a non-trivial training phase (persistent
    #: forecasts do not; Section 5.3.3).
    requires_training: bool = True

    def __init__(self) -> None:
        self._history: LoadSeries | None = None
        self._fit_result: FitResult | None = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def fit(self, history: LoadSeries) -> "Forecaster":
        """Fit the model on a server's historical load.

        The history must be non-empty; models document their own minimum
        history requirements (e.g. persistent forecast needs at least the
        lag it replicates).
        """
        if history.is_empty:
            raise ForecastError(f"{self.name}: cannot fit on an empty history")
        started = time.perf_counter()
        self._fit(history)
        elapsed = time.perf_counter() - started
        self._history = history
        self._fit_result = FitResult(
            model_name=self.name,
            n_training_points=len(history),
            fit_seconds=elapsed,
        )
        return self

    def predict(self, n_points: int) -> LoadSeries:
        """Predict ``n_points`` values immediately following the history."""
        if self._history is None:
            raise NotFittedError(f"{self.name}: fit() must be called before predict()")
        if n_points <= 0:
            raise ValueError("n_points must be positive")
        values = np.asarray(self._predict_values(n_points), dtype=np.float64)
        if values.shape != (n_points,):
            raise ForecastError(
                f"{self.name}: model produced {values.shape} values, expected ({n_points},)"
            )
        values = np.clip(values, 0.0, 100.0)
        start = self._history.end + self._history.interval_minutes
        return LoadSeries.from_values(values, start=start, interval_minutes=self._history.interval_minutes)

    def fit_predict(self, history: LoadSeries, n_points: int) -> LoadSeries:
        """Convenience: fit on ``history`` then predict ``n_points``."""
        return self.fit(history).predict(n_points)

    @property
    def fit_result(self) -> FitResult | None:
        """Timing and metadata of the last :meth:`fit` call."""
        return self._fit_result

    @property
    def history(self) -> LoadSeries | None:
        """The history the model was last fit on."""
        return self._history

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _fit(self, history: LoadSeries) -> None:
        """Model-specific fitting."""

    @abc.abstractmethod
    def _predict_values(self, n_points: int) -> np.ndarray:
        """Model-specific forecasting of ``n_points`` values."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fitted = "fitted" if self._history is not None else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {fitted})"
