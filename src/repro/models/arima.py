"""ARIMA forecaster with order search.

The paper evaluates ARIMA and excludes it: searching the optimal values of
its parameters per server makes fitting take hours, so "executing ARIMA in
parallel for each server does not make runtime of ARIMA comparable to other
models" (Sections 2.1 and 5.3.3).  This implementation keeps that
behavioural profile at laptop scale: it grid-searches (p, d, q) orders,
fits each candidate by conditional-sum-of-squares optimisation and picks
the best by AIC, which is markedly more expensive than any other model in
the registry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.models.base import Forecaster, ForecastError
from repro.timeseries.series import LoadSeries


@dataclass(frozen=True)
class ArimaConfig:
    """Order-search space and fitting controls."""

    max_p: int = 2
    max_d: int = 1
    max_q: int = 2
    max_training_points: int = 2016  # one week at 5-minute granularity
    max_iterations: int = 200


def _difference(values: np.ndarray, d: int) -> np.ndarray:
    for _ in range(d):
        values = np.diff(values)
    return values


def _css_residuals(values: np.ndarray, ar: np.ndarray, ma: np.ndarray) -> np.ndarray:
    """Conditional-sum-of-squares residuals of an ARMA(p, q) model."""
    p, q = ar.shape[0], ma.shape[0]
    n = values.shape[0]
    residuals = np.zeros(n)
    for t in range(n):
        ar_part = 0.0
        for i in range(p):
            if t - 1 - i >= 0:
                ar_part += ar[i] * values[t - 1 - i]
        ma_part = 0.0
        for j in range(q):
            if t - 1 - j >= 0:
                ma_part += ma[j] * residuals[t - 1 - j]
        residuals[t] = values[t] - ar_part - ma_part
    return residuals


class ArimaForecaster(Forecaster):
    """ARIMA(p, d, q) with AIC-based order selection."""

    name = "arima"

    def __init__(self, config: ArimaConfig | None = None) -> None:
        super().__init__()
        self._config = config if config is not None else ArimaConfig()
        self._order: tuple[int, int, int] = (0, 0, 0)
        self._ar: np.ndarray = np.empty(0)
        self._ma: np.ndarray = np.empty(0)
        self._mean = 0.0
        self._training: np.ndarray = np.empty(0)
        self._residuals: np.ndarray = np.empty(0)

    @property
    def order(self) -> tuple[int, int, int]:
        """The selected (p, d, q) order."""
        return self._order

    def _fit_candidate(
        self, values: np.ndarray, p: int, q: int
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Fit ARMA(p, q) by CSS; return (aic, ar, ma)."""
        n = values.shape[0]

        def objective(params: np.ndarray) -> float:
            ar, ma = params[:p], params[p:]
            residuals = _css_residuals(values, ar, ma)
            return float(np.sum(residuals**2))

        n_params = p + q
        if n_params == 0:
            sse = float(np.sum(values**2))
            aic = n * np.log(max(sse / n, 1e-12)) + 2
            return aic, np.empty(0), np.empty(0)

        initial = np.full(n_params, 0.1)
        result = optimize.minimize(
            objective,
            initial,
            method="L-BFGS-B",
            bounds=[(-0.98, 0.98)] * n_params,
            options={"maxiter": self._config.max_iterations},
        )
        sse = float(result.fun)
        aic = n * np.log(max(sse / n, 1e-12)) + 2 * (n_params + 1)
        return aic, result.x[:p].copy(), result.x[p:].copy()

    def _fit(self, history: LoadSeries) -> None:
        cfg = self._config
        values = history.values.astype(np.float64)
        if values.shape[0] > cfg.max_training_points:
            values = values[-cfg.max_training_points :]
        if values.shape[0] < 16:
            raise ForecastError(f"{self.name}: history too short for ARIMA")

        best = (float("inf"), (0, 0, 0), np.empty(0), np.empty(0), values, 0.0)
        for d in range(cfg.max_d + 1):
            differenced = _difference(values, d)
            mean = float(differenced.mean())
            centered = differenced - mean
            for p in range(cfg.max_p + 1):
                for q in range(cfg.max_q + 1):
                    if p == 0 and q == 0 and d == 0:
                        continue
                    aic, ar, ma = self._fit_candidate(centered, p, q)
                    if aic < best[0]:
                        best = (aic, (p, d, q), ar, ma, centered, mean)

        _, self._order, self._ar, self._ma, self._training, self._mean = best
        self._residuals = _css_residuals(self._training, self._ar, self._ma)
        self._last_values = values

    def _predict_values(self, n_points: int) -> np.ndarray:
        p, d, q = self._order
        ar, ma = self._ar, self._ma
        history = self._training.tolist()
        residuals = self._residuals.tolist()
        forecasts_diff: list[float] = []
        for _ in range(n_points):
            ar_part = sum(
                ar[i] * history[-1 - i] for i in range(p) if len(history) > i
            )
            ma_part = sum(
                ma[j] * residuals[-1 - j] for j in range(q) if len(residuals) > j
            )
            value = ar_part + ma_part
            forecasts_diff.append(value)
            history.append(value)
            residuals.append(0.0)

        forecast = np.asarray(forecasts_diff) + self._mean
        # Undo differencing by cumulative summation anchored at the last
        # observed levels.
        for _ in range(d):
            forecast = np.cumsum(forecast) + self._last_values[-1]
        return forecast
