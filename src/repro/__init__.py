"""Reproduction of "Seagull: An Infrastructure for Load Prediction and
Optimized Resource Allocation" (Poppe et al., VLDB 2020).

The package mirrors the paper's architecture:

* :mod:`repro.timeseries`, :mod:`repro.storage`, :mod:`repro.telemetry`,
  :mod:`repro.parallel` -- substrates (time series containers, the data
  lake / document store stand-ins, the synthetic telemetry generator and
  the Dask-substitute executor).
* :mod:`repro.validation`, :mod:`repro.features`, :mod:`repro.models`,
  :mod:`repro.metrics` -- pipeline modules (data validation, feature
  extraction / server classification, forecasting models, use-case-specific
  accuracy metrics).
* :mod:`repro.core` -- the use-case-agnostic pipeline, model registry,
  scoring endpoints, scheduler, incidents and dashboard.
* :mod:`repro.serving` -- the unified prediction-serving API: typed
  requests/responses, version routing with fallback, batching and an LRU
  prediction cache.  Every prediction consumer goes through it.
* :mod:`repro.scheduling` -- the backup-scheduling use case (online
  components and impact analysis).
* :mod:`repro.autoscale` -- the preemptive auto-scale use case
  (Appendix A).

Quickstart
----------

>>> from repro import (
...     default_fleet_spec, WorkloadGenerator, PipelineConfig, SeagullPipeline,
... )
>>> spec = default_fleet_spec(servers_per_region=(40,), weeks=4, seed=1)
>>> frame = WorkloadGenerator(spec).generate_region("region-0")
>>> pipeline = SeagullPipeline(PipelineConfig())
>>> result = pipeline.run(frame, region="region-0", week=3)
>>> result.succeeded
True
"""

from repro.core.config import PipelineConfig
from repro.core.pipeline import PipelineRunResult, SeagullPipeline
from repro.core.registry import ModelRegistry
from repro.core.scheduler import PipelineScheduler
from repro.features.classification import ServerClassLabel, classify_frame, classify_server
from repro.fleet_ops import FleetOrchestrator, FleetReport, populate_lake
from repro.metrics.bucket_ratio import ErrorBound, bucket_ratio, is_accurate_prediction
from repro.metrics.evaluation import AccuracyEvaluationModule
from repro.metrics.ll_window import lowest_load_window, is_window_correctly_chosen
from repro.models.registry import available_models, create_forecaster
from repro.scheduling.backup import BackupScheduler
from repro.scheduling.impact import BackupImpactAnalyzer
from repro.serving import (
    BatchPredictionResponse,
    PredictionRequest,
    PredictionResponse,
    PredictionService,
)
from repro.storage.artifacts import ArtifactStore
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.documentdb import DocumentStore
from repro.telemetry.fleet import FleetSpec, RegionSpec, default_fleet_spec, sql_database_fleet_spec
from repro.telemetry.generator import WorkloadGenerator
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "LoadSeries",
    "LoadFrame",
    "ServerMetadata",
    "FleetSpec",
    "RegionSpec",
    "default_fleet_spec",
    "sql_database_fleet_spec",
    "WorkloadGenerator",
    "DataLakeStore",
    "ExtractKey",
    "DocumentStore",
    "ErrorBound",
    "bucket_ratio",
    "is_accurate_prediction",
    "lowest_load_window",
    "is_window_correctly_chosen",
    "AccuracyEvaluationModule",
    "classify_server",
    "classify_frame",
    "ServerClassLabel",
    "create_forecaster",
    "available_models",
    "PipelineConfig",
    "SeagullPipeline",
    "PipelineRunResult",
    "ModelRegistry",
    "PredictionService",
    "PredictionRequest",
    "PredictionResponse",
    "BatchPredictionResponse",
    "PipelineScheduler",
    "BackupScheduler",
    "BackupImpactAnalyzer",
    "ArtifactStore",
    "FleetOrchestrator",
    "FleetReport",
    "populate_lake",
]
