"""Predictable-server rule (Definition 9).

A long-lived server is *predictable* when, for the last three weeks, its
lowest-load windows were chosen correctly and the load during those windows
was predicted accurately.  The online backup scheduler only moves backups
for predictable servers; everything else keeps the default window
(Section 2.3).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.metrics.bucket_ratio import (
    DEFAULT_ACCURACY_THRESHOLD,
    DEFAULT_ERROR_BOUND,
    ErrorBound,
    is_accurate_prediction,
)
from repro.metrics.ll_window import (
    WindowSearchError,
    is_window_correctly_chosen,
    lowest_load_window,
)
from repro.timeseries.series import LoadSeries

#: Definition 9 looks at the last three weeks of backup days.
DEFAULT_HISTORY_WEEKS = 3


@dataclass(frozen=True)
class PredictabilityVerdict:
    """Outcome of the Definition 9 check for one server."""

    server_id: str
    evaluated_days: tuple[int, ...]
    window_correct_days: tuple[int, ...]
    load_accurate_days: tuple[int, ...]
    required_days: int
    predictable: bool
    reason: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "server_id": self.server_id,
            "evaluated_days": list(self.evaluated_days),
            "window_correct_days": list(self.window_correct_days),
            "load_accurate_days": list(self.load_accurate_days),
            "required_days": self.required_days,
            "predictable": self.predictable,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "PredictabilityVerdict":
        """Inverse of :meth:`as_dict` (used by the artifact cache)."""
        return cls(
            server_id=str(payload["server_id"]),
            evaluated_days=tuple(int(day) for day in payload["evaluated_days"]),
            window_correct_days=tuple(int(day) for day in payload["window_correct_days"]),
            load_accurate_days=tuple(int(day) for day in payload["load_accurate_days"]),
            required_days=int(payload["required_days"]),
            predictable=bool(payload["predictable"]),
            reason=str(payload["reason"]),
        )


def is_predictable_server(
    server_id: str,
    true_series: LoadSeries,
    predicted_series: LoadSeries,
    evaluation_days: Iterable[int],
    backup_duration_minutes: int,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
    accuracy_threshold: float = DEFAULT_ACCURACY_THRESHOLD,
    required_days: int = DEFAULT_HISTORY_WEEKS,
) -> PredictabilityVerdict:
    """Apply Definition 9 to one server.

    Parameters
    ----------
    true_series / predicted_series:
        Observed and forecast load covering the evaluation days.
    evaluation_days:
        The (typically weekly) backup days of the last three weeks.
    backup_duration_minutes:
        Expected duration of a full backup of this server.
    required_days:
        Minimum number of evaluated days that must all pass; defaults to
        three (one backup day per week over three weeks).
    """
    evaluated: list[int] = []
    window_correct: list[int] = []
    load_accurate: list[int] = []
    reason = ""

    for day in sorted(set(evaluation_days)):
        try:
            predicted_window = lowest_load_window(
                predicted_series, day, backup_duration_minutes
            )
            correct = is_window_correctly_chosen(
                predicted_series, true_series, day, backup_duration_minutes, bound
            )
        except WindowSearchError:
            reason = f"day {day} lacks enough samples to evaluate"
            continue
        evaluated.append(day)
        if correct:
            window_correct.append(day)
        predicted_in_window = predicted_series.slice(
            predicted_window.start, predicted_window.end
        )
        true_in_window = true_series.slice(predicted_window.start, predicted_window.end)
        if is_accurate_prediction(
            predicted_in_window, true_in_window, bound, accuracy_threshold
        ):
            load_accurate.append(day)

    enough_history = len(evaluated) >= required_days
    all_windows_correct = len(window_correct) == len(evaluated) and evaluated
    all_loads_accurate = len(load_accurate) == len(evaluated) and evaluated
    predictable = bool(enough_history and all_windows_correct and all_loads_accurate)

    if not enough_history and not reason:
        reason = (
            f"only {len(evaluated)} evaluable days, {required_days} required "
            "(server may be short-lived or have sparse telemetry)"
        )
    elif not predictable and not reason:
        failed_windows = len(evaluated) - len(window_correct)
        failed_loads = len(evaluated) - len(load_accurate)
        reason = (
            f"{failed_windows} day(s) with an incorrectly chosen window, "
            f"{failed_loads} day(s) with inaccurate load prediction"
        )

    return PredictabilityVerdict(
        server_id=server_id,
        evaluated_days=tuple(evaluated),
        window_correct_days=tuple(window_correct),
        load_accurate_days=tuple(load_accurate),
        required_days=required_days,
        predictable=predictable,
        reason=reason,
    )
