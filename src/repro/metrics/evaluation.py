"""Accuracy Evaluation Module (Sections 2.2, 4 and 6.1).

Given true and predicted load per server, this module evaluates, per server
and per backup day, whether the lowest-load window was chosen correctly and
whether the load during that window was predicted accurately.  It can run
single-threaded or partitioned per server on a parallel executor -- the
comparison plotted in Figure 12(b).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.bucket_ratio import (
    DEFAULT_ACCURACY_THRESHOLD,
    DEFAULT_ERROR_BOUND,
    ErrorBound,
    bucket_ratio,
    is_accurate_prediction,
)
from repro.metrics.ll_window import (
    WindowSearchError,
    is_window_correctly_chosen,
    lowest_load_window,
)
from repro.metrics.predictable import (
    DEFAULT_HISTORY_WEEKS,
    PredictabilityVerdict,
    is_predictable_server,
)
from repro.parallel.executor import PartitionedExecutor
from repro.parallel.partition import partition_list
from repro.timeseries.frame import LoadFrame
from repro.timeseries.series import LoadSeries


@dataclass(frozen=True)
class ServerDayEvaluation:
    """Evaluation of one server on one (backup) day."""

    server_id: str
    day: int
    window_correct: bool
    load_accurate: bool
    bucket_ratio_in_window: float
    bucket_ratio_full_day: float
    predicted_window_start: int
    true_window_start: int
    predicted_window_load: float
    true_window_load: float
    evaluable: bool = True
    failure_reason: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "server_id": self.server_id,
            "day": self.day,
            "window_correct": self.window_correct,
            "load_accurate": self.load_accurate,
            "bucket_ratio_in_window": self.bucket_ratio_in_window,
            "bucket_ratio_full_day": self.bucket_ratio_full_day,
            "predicted_window_start": self.predicted_window_start,
            "true_window_start": self.true_window_start,
            "predicted_window_load": self.predicted_window_load,
            "true_window_load": self.true_window_load,
            "evaluable": self.evaluable,
            "failure_reason": self.failure_reason,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ServerDayEvaluation":
        """Inverse of :meth:`as_dict` (used by the artifact cache)."""
        return cls(
            server_id=str(payload["server_id"]),
            day=int(payload["day"]),
            window_correct=bool(payload["window_correct"]),
            load_accurate=bool(payload["load_accurate"]),
            bucket_ratio_in_window=float(payload["bucket_ratio_in_window"]),
            bucket_ratio_full_day=float(payload["bucket_ratio_full_day"]),
            predicted_window_start=int(payload["predicted_window_start"]),
            true_window_start=int(payload["true_window_start"]),
            predicted_window_load=float(payload["predicted_window_load"]),
            true_window_load=float(payload["true_window_load"]),
            evaluable=bool(payload["evaluable"]),
            failure_reason=str(payload["failure_reason"]),
        )


@dataclass(frozen=True)
class EvaluationSummary:
    """Fleet-level aggregation of per-server-day evaluations.

    These are the three metrics reported throughout Section 5: the
    percentage of correctly chosen LL windows, the percentage of LL windows
    with accurately predicted load, and the percentage of predictable
    servers.
    """

    n_server_days: int
    n_evaluable: int
    pct_windows_correct: float
    pct_load_accurate: float
    pct_predictable_servers: float
    n_servers: int
    n_predictable_servers: int

    def as_dict(self) -> dict[str, float]:
        return {
            "n_server_days": self.n_server_days,
            "n_evaluable": self.n_evaluable,
            "pct_windows_correct": self.pct_windows_correct,
            "pct_load_accurate": self.pct_load_accurate,
            "pct_predictable_servers": self.pct_predictable_servers,
            "n_servers": self.n_servers,
            "n_predictable_servers": self.n_predictable_servers,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, float]) -> "EvaluationSummary":
        """Inverse of :meth:`as_dict` (used by the artifact cache)."""
        return cls(
            n_server_days=int(payload["n_server_days"]),
            n_evaluable=int(payload["n_evaluable"]),
            pct_windows_correct=float(payload["pct_windows_correct"]),
            pct_load_accurate=float(payload["pct_load_accurate"]),
            pct_predictable_servers=float(payload["pct_predictable_servers"]),
            n_servers=int(payload["n_servers"]),
            n_predictable_servers=int(payload["n_predictable_servers"]),
        )


def evaluate_server_day(
    server_id: str,
    true_series: LoadSeries,
    predicted_series: LoadSeries,
    day: int,
    backup_duration_minutes: int,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
    accuracy_threshold: float = DEFAULT_ACCURACY_THRESHOLD,
) -> ServerDayEvaluation:
    """Evaluate one server on one day (Definitions 2 and 8 combined)."""
    try:
        predicted_window = lowest_load_window(
            predicted_series, day, backup_duration_minutes
        )
        true_window = lowest_load_window(true_series, day, backup_duration_minutes)
    except WindowSearchError as exc:
        return ServerDayEvaluation(
            server_id=server_id,
            day=day,
            window_correct=False,
            load_accurate=False,
            bucket_ratio_in_window=float("nan"),
            bucket_ratio_full_day=float("nan"),
            predicted_window_start=-1,
            true_window_start=-1,
            predicted_window_load=float("nan"),
            true_window_load=float("nan"),
            evaluable=False,
            failure_reason=str(exc),
        )

    window_correct = is_window_correctly_chosen(
        predicted_series, true_series, day, backup_duration_minutes, bound
    )

    predicted_in_window = predicted_series.slice(predicted_window.start, predicted_window.end)
    true_in_window = true_series.slice(predicted_window.start, predicted_window.end)
    ratio_in_window = bucket_ratio(predicted_in_window, true_in_window, bound)
    load_accurate = is_accurate_prediction(
        predicted_in_window, true_in_window, bound, accuracy_threshold
    )

    ratio_full_day = bucket_ratio(
        predicted_series.day(day), true_series.day(day), bound
    )

    return ServerDayEvaluation(
        server_id=server_id,
        day=day,
        window_correct=window_correct,
        load_accurate=load_accurate,
        bucket_ratio_in_window=ratio_in_window,
        bucket_ratio_full_day=ratio_full_day,
        predicted_window_start=predicted_window.start,
        true_window_start=true_window.start,
        predicted_window_load=predicted_window.average_load,
        true_window_load=true_window.average_load,
    )


def _evaluate_task(task: tuple) -> list[ServerDayEvaluation]:
    """Module-level worker so the process-pool backend can pickle it."""
    (
        server_id,
        true_series,
        predicted_series,
        days,
        duration,
        bound,
        threshold,
    ) = task
    return [
        evaluate_server_day(
            server_id, true_series, predicted_series, day, duration, bound, threshold
        )
        for day in days
    ]


class AccuracyEvaluationModule:
    """Evaluates predictions for a whole fleet, serially or in parallel."""

    def __init__(
        self,
        bound: ErrorBound = DEFAULT_ERROR_BOUND,
        accuracy_threshold: float = DEFAULT_ACCURACY_THRESHOLD,
        executor: PartitionedExecutor | None = None,
    ) -> None:
        self._bound = bound
        self._threshold = accuracy_threshold
        self._executor = executor if executor is not None else PartitionedExecutor.serial()

    @property
    def executor(self) -> PartitionedExecutor:
        return self._executor

    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        true_frame: LoadFrame,
        predictions: Mapping[str, LoadSeries],
        days_by_server: Mapping[str, Iterable[int]],
        n_partitions: int | None = None,
    ) -> list[ServerDayEvaluation]:
        """Evaluate every (server, day) pair.

        Parameters
        ----------
        true_frame:
            Observed load per server.
        predictions:
            Predicted load per server (may cover one or several days).
        days_by_server:
            Which days to evaluate per server, typically the backup day
            (Figure 12(b) left group) or every day one week ahead
            (Figure 12(b) right group).
        n_partitions:
            Number of per-server partitions handed to the executor;
            defaults to the executor's worker count.
        """
        tasks = []
        for server_id in true_frame.server_ids():
            if server_id not in predictions or server_id not in days_by_server:
                continue
            days = sorted(set(days_by_server[server_id]))
            if not days:
                continue
            tasks.append(
                (
                    server_id,
                    true_frame.series(server_id),
                    predictions[server_id],
                    days,
                    true_frame.metadata(server_id).backup_duration_minutes,
                    self._bound,
                    self._threshold,
                )
            )
        if not tasks:
            return []
        partitions = partition_list(
            tasks, n_partitions if n_partitions is not None else self._executor.n_workers
        )
        nested = self._executor.map(_evaluate_batch, partitions)
        results: list[ServerDayEvaluation] = []
        for chunk in nested:
            results.extend(chunk)
        return results

    def summarize(
        self,
        evaluations: Iterable[ServerDayEvaluation],
        required_days: int = DEFAULT_HISTORY_WEEKS,
    ) -> EvaluationSummary:
        """Aggregate evaluations into the three fleet-level percentages."""
        evaluations = list(evaluations)
        evaluable = [e for e in evaluations if e.evaluable]
        n_windows_correct = sum(1 for e in evaluable if e.window_correct)
        n_load_accurate = sum(1 for e in evaluable if e.load_accurate)

        per_server: dict[str, list[ServerDayEvaluation]] = {}
        for evaluation in evaluable:
            per_server.setdefault(evaluation.server_id, []).append(evaluation)
        n_predictable = 0
        for server_evals in per_server.values():
            if len(server_evals) >= required_days and all(
                e.window_correct and e.load_accurate for e in server_evals
            ):
                n_predictable += 1

        n_servers = len({e.server_id for e in evaluations})
        return EvaluationSummary(
            n_server_days=len(evaluations),
            n_evaluable=len(evaluable),
            pct_windows_correct=_percentage(n_windows_correct, len(evaluable)),
            pct_load_accurate=_percentage(n_load_accurate, len(evaluable)),
            pct_predictable_servers=_percentage(n_predictable, n_servers),
            n_servers=n_servers,
            n_predictable_servers=n_predictable,
        )

    def predictability(
        self,
        true_frame: LoadFrame,
        predictions: Mapping[str, LoadSeries],
        days_by_server: Mapping[str, Iterable[int]],
        required_days: int = DEFAULT_HISTORY_WEEKS,
    ) -> dict[str, PredictabilityVerdict]:
        """Apply Definition 9 per server over its evaluation days."""
        verdicts: dict[str, PredictabilityVerdict] = {}
        for server_id in true_frame.server_ids():
            if server_id not in predictions or server_id not in days_by_server:
                continue
            verdicts[server_id] = is_predictable_server(
                server_id,
                true_frame.series(server_id),
                predictions[server_id],
                days_by_server[server_id],
                true_frame.metadata(server_id).backup_duration_minutes,
                self._bound,
                self._threshold,
                required_days,
            )
        return verdicts


def _evaluate_batch(batch: list[tuple]) -> list[ServerDayEvaluation]:
    """Evaluate a partition of tasks (module-level for picklability)."""
    results: list[ServerDayEvaluation] = []
    for task in batch:
        results.extend(_evaluate_task(task))
    return results


def _percentage(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return float("nan")
    return 100.0 * numerator / denominator
