"""Acceptable error bound and bucket-ratio metric (Definitions 1 and 2).

The paper deliberately replaces generic statistical error measures with a
use-case-specific metric: the *bucket ratio* is the fraction of predicted
data points that fall within an asymmetric tolerance band around their true
counterparts.  The band tolerates up to ``+10`` percentage points of
over-prediction but only ``-5`` of under-prediction, because slightly
over-estimating a low-load period is harmless whereas under-estimating it
can schedule a backup into a busy period.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.timeseries.series import LoadSeries


@dataclass(frozen=True)
class ErrorBound:
    """Asymmetric acceptable error bound (Definition 1).

    A predicted point ``p`` is acceptable for a true point ``t`` when
    ``t - under_tolerance <= p <= t + over_tolerance``.
    """

    over_tolerance: float = 10.0
    under_tolerance: float = 5.0

    def __post_init__(self) -> None:
        if self.over_tolerance < 0 or self.under_tolerance < 0:
            raise ValueError("tolerances must be non-negative")

    def contains(self, predicted: np.ndarray, true: np.ndarray) -> np.ndarray:
        """Return a boolean mask of predicted points inside the band."""
        predicted = np.asarray(predicted, dtype=np.float64)
        true = np.asarray(true, dtype=np.float64)
        deviation = predicted - true
        return (deviation <= self.over_tolerance) & (deviation >= -self.under_tolerance)

    def within(self, predicted_value: float, true_value: float) -> bool:
        """Scalar convenience form of :meth:`contains`."""
        deviation = predicted_value - true_value
        return -self.under_tolerance <= deviation <= self.over_tolerance


#: The production bound used for the backup-scheduling use case (+10 / -5).
DEFAULT_ERROR_BOUND = ErrorBound(over_tolerance=10.0, under_tolerance=5.0)

#: Definition 2: a prediction is accurate when at least 90% of points are in bound.
DEFAULT_ACCURACY_THRESHOLD = 0.90


def bucket_ratio(
    predicted: LoadSeries | np.ndarray,
    true: LoadSeries | np.ndarray,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
) -> float:
    """Return the bucket ratio of ``predicted`` against ``true`` (Definition 1).

    When both arguments are :class:`LoadSeries` they are first aligned on
    their common timestamps; plain arrays are compared element-wise.  The
    ratio is ``nan`` when there are no comparable points.
    """
    if isinstance(predicted, LoadSeries) and isinstance(true, LoadSeries):
        predicted_values, true_values = predicted.align_to(true)
    else:
        predicted_values = np.asarray(predicted, dtype=np.float64)
        true_values = np.asarray(true, dtype=np.float64)
        if predicted_values.shape != true_values.shape:
            raise ValueError(
                "predicted and true arrays must have identical shapes; "
                "pass LoadSeries objects to align by timestamp instead"
            )
    if predicted_values.size == 0:
        return float("nan")
    inside = bound.contains(predicted_values, true_values)
    return float(np.count_nonzero(inside) / inside.size)


def is_accurate_prediction(
    predicted: LoadSeries | np.ndarray,
    true: LoadSeries | np.ndarray,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
    threshold: float = DEFAULT_ACCURACY_THRESHOLD,
) -> bool:
    """Definition 2: prediction is accurate when the bucket ratio >= ``threshold``.

    An empty comparison (no overlapping points) is never accurate.
    """
    ratio = bucket_ratio(predicted, true, bound)
    if np.isnan(ratio):
        return False
    return ratio >= threshold
