"""Standard prediction-error metrics used by the auto-scale use case.

Appendix A.2 evaluates the 24-hour-ahead CPU forecasts of SQL databases
with Mean Normalized Root Mean Squared Error (Mean NRMSE) and Mean Absolute
Scaled Error (MASE):

* ``error = forecast - true``
* ``Mean NRMSE = sqrt(mean(error^2)) / mean(true)`` -- a value of 1 matches
  a forecast that always predicts the historical mean.
* ``MASE = mean(|error| / normalizing_factor)`` where the normalizing
  factor is the error of the one-step-ahead naive (persistence) forecast on
  the true series -- a value below 1 beats the naive forecast.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.series import LoadSeries


def _to_arrays(
    forecast: LoadSeries | np.ndarray, true: LoadSeries | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(forecast, LoadSeries) and isinstance(true, LoadSeries):
        return forecast.align_to(true)
    forecast_values = np.asarray(forecast, dtype=np.float64)
    true_values = np.asarray(true, dtype=np.float64)
    if forecast_values.shape != true_values.shape:
        raise ValueError("forecast and true arrays must have identical shapes")
    return forecast_values, true_values


def prediction_error(
    forecast: LoadSeries | np.ndarray, true: LoadSeries | np.ndarray
) -> np.ndarray:
    """Equation 1: pointwise ``forecast - true`` on the common grid."""
    forecast_values, true_values = _to_arrays(forecast, true)
    return forecast_values - true_values


def mean_nrmse(
    forecast: LoadSeries | np.ndarray, true: LoadSeries | np.ndarray
) -> float:
    """Equation 2: RMSE normalised by the mean of the true series.

    Returns ``nan`` when there are no comparable points or the true mean is
    zero (the metric is undefined for an all-idle trace).
    """
    forecast_values, true_values = _to_arrays(forecast, true)
    if forecast_values.size == 0:
        return float("nan")
    true_mean = float(np.mean(true_values))
    if true_mean == 0.0:
        return float("nan")
    rmse = float(np.sqrt(np.mean((forecast_values - true_values) ** 2)))
    return rmse / true_mean


def mase(
    forecast: LoadSeries | np.ndarray,
    true: LoadSeries | np.ndarray,
    training_true: LoadSeries | np.ndarray | None = None,
) -> float:
    """Equation 3: mean absolute error scaled by the naive-forecast error.

    The normalising factor is the mean absolute one-step difference of the
    true series (the error a one-step-ahead persistence forecast makes).
    When ``training_true`` is given the factor is computed on it, which is
    the textbook in-sample MASE; otherwise the evaluation series itself is
    used.
    """
    forecast_values, true_values = _to_arrays(forecast, true)
    if forecast_values.size == 0:
        return float("nan")
    if training_true is None:
        scale_values = true_values
    else:
        scale_source = (
            training_true.values if isinstance(training_true, LoadSeries) else training_true
        )
        scale_values = np.asarray(scale_source, dtype=np.float64)
    if scale_values.size < 2:
        return float("nan")
    naive_error = float(np.mean(np.abs(np.diff(scale_values))))
    if naive_error == 0.0:
        return float("nan")
    return float(np.mean(np.abs(forecast_values - true_values)) / naive_error)


def rmse(forecast: LoadSeries | np.ndarray, true: LoadSeries | np.ndarray) -> float:
    """Plain root mean squared error (used in diagnostics and ablations)."""
    forecast_values, true_values = _to_arrays(forecast, true)
    if forecast_values.size == 0:
        return float("nan")
    return float(np.sqrt(np.mean((forecast_values - true_values) ** 2)))


def mean_absolute_error(
    forecast: LoadSeries | np.ndarray, true: LoadSeries | np.ndarray
) -> float:
    """Plain mean absolute error (used in diagnostics and ablations)."""
    forecast_values, true_values = _to_arrays(forecast, true)
    if forecast_values.size == 0:
        return float("nan")
    return float(np.mean(np.abs(forecast_values - true_values)))
