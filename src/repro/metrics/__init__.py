"""Prediction-accuracy metrics (Sections 3.1, 4 and Appendix A.2).

* :mod:`~repro.metrics.bucket_ratio` -- the acceptable error bound and
  bucket-ratio metric (Definitions 1 and 2).
* :mod:`~repro.metrics.ll_window` -- lowest-load windows and the
  correctly-chosen-window metric (Definitions 7 and 8).
* :mod:`~repro.metrics.predictable` -- the predictable-server rule
  (Definition 9: three weeks of correct windows and accurate load).
* :mod:`~repro.metrics.standard` -- Mean NRMSE and MASE used by the
  auto-scale use case (Appendix A.2).
* :mod:`~repro.metrics.evaluation` -- the Accuracy Evaluation Module of the
  pipeline, with serial and parallel (per-server partitioned) execution.
"""

from repro.metrics.bucket_ratio import (
    DEFAULT_ACCURACY_THRESHOLD,
    DEFAULT_ERROR_BOUND,
    ErrorBound,
    bucket_ratio,
    is_accurate_prediction,
)
from repro.metrics.ll_window import (
    LowestLoadWindow,
    is_window_correctly_chosen,
    lowest_load_window,
    window_average_load,
)
from repro.metrics.predictable import PredictabilityVerdict, is_predictable_server
from repro.metrics.standard import mase, mean_nrmse, prediction_error
from repro.metrics.evaluation import (
    AccuracyEvaluationModule,
    ServerDayEvaluation,
    EvaluationSummary,
)

__all__ = [
    "ErrorBound",
    "DEFAULT_ERROR_BOUND",
    "DEFAULT_ACCURACY_THRESHOLD",
    "bucket_ratio",
    "is_accurate_prediction",
    "LowestLoadWindow",
    "lowest_load_window",
    "window_average_load",
    "is_window_correctly_chosen",
    "PredictabilityVerdict",
    "is_predictable_server",
    "prediction_error",
    "mean_nrmse",
    "mase",
    "AccuracyEvaluationModule",
    "ServerDayEvaluation",
    "EvaluationSummary",
]
