"""Lowest-load windows (Definitions 7 and 8).

For a server due for full backup on day ``d`` with expected backup duration
``b``, the *true* lowest-load (LL) window is the length-``b`` interval of
day ``d`` whose average true load is minimal; the *predicted* LL window is
defined analogously on the predicted load.  The predicted window is chosen
*correctly* when the average true load during it is within the acceptable
error bound of the average true load during the true window -- i.e. the true
window would not have been a significantly better time to run the backup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.bucket_ratio import DEFAULT_ERROR_BOUND, ErrorBound
from repro.timeseries import calendar
from repro.timeseries.series import LoadSeries


class WindowSearchError(ValueError):
    """Raised when a day does not contain enough samples to fit the window."""


@dataclass(frozen=True)
class LowestLoadWindow:
    """A candidate backup window: start minute, duration and average load."""

    start: int
    duration_minutes: int
    average_load: float

    @property
    def end(self) -> int:
        return self.start + self.duration_minutes

    def overlaps(self, other: "LowestLoadWindow") -> bool:
        """Return whether two windows overlap in time."""
        return self.start < other.end and other.start < self.end

    def as_dict(self) -> dict[str, float]:
        return {
            "start": self.start,
            "end": self.end,
            "duration_minutes": self.duration_minutes,
            "average_load": self.average_load,
        }


def window_average_load(series: LoadSeries, start: int, duration_minutes: int) -> float:
    """Average load of ``series`` during ``[start, start + duration)``."""
    return series.window_average(start, duration_minutes)


def _sliding_window_means(values: np.ndarray, window_points: int) -> np.ndarray:
    """Means of every contiguous window of ``window_points`` samples."""
    cumulative = np.concatenate([[0.0], np.cumsum(values)])
    sums = cumulative[window_points:] - cumulative[:-window_points]
    return sums / window_points


def lowest_load_window(
    series: LoadSeries,
    day: int,
    duration_minutes: int,
) -> LowestLoadWindow:
    """Definition 7: the minimum-average window of length ``duration_minutes``.

    The search slides over the samples of day ``day`` in grid steps.  Ties
    are broken towards the earliest window, which keeps the result
    deterministic.

    Raises
    ------
    WindowSearchError
        If the day has fewer samples than the window needs.
    """
    if duration_minutes <= 0:
        raise ValueError("duration_minutes must be positive")
    day_series = series.day(day)
    interval = series.interval_minutes
    window_points = max(1, -(-duration_minutes // interval))
    if len(day_series) < window_points:
        raise WindowSearchError(
            f"day {day} has {len(day_series)} samples but the window needs {window_points}"
        )
    means = _sliding_window_means(day_series.values, window_points)
    best = int(np.argmin(means))
    start = int(day_series.timestamps[best])
    return LowestLoadWindow(
        start=start,
        duration_minutes=duration_minutes,
        average_load=float(means[best]),
    )


def predicted_and_true_windows(
    predicted: LoadSeries,
    true: LoadSeries,
    day: int,
    duration_minutes: int,
) -> tuple[LowestLoadWindow, LowestLoadWindow]:
    """Return the (predicted, true) LL windows of day ``day``."""
    predicted_window = lowest_load_window(predicted, day, duration_minutes)
    true_window = lowest_load_window(true, day, duration_minutes)
    return predicted_window, true_window


def is_window_correctly_chosen(
    predicted: LoadSeries,
    true: LoadSeries,
    day: int,
    duration_minutes: int,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
) -> bool:
    """Definition 8: the predicted window is correct when running the backup
    there is not significantly worse than running it in the true window.

    Concretely, the average *true* load during the predicted window must be
    within the acceptable error bound of the average true load during the
    true window.
    """
    predicted_window, true_window = predicted_and_true_windows(
        predicted, true, day, duration_minutes
    )
    true_load_in_predicted = window_average_load(
        true, predicted_window.start, duration_minutes
    )
    return bound.within(true_load_in_predicted, true_window.average_load)


def window_for_default_backup(
    series: LoadSeries,
    default_start: int,
    duration_minutes: int,
) -> LowestLoadWindow:
    """Describe the default backup window as a :class:`LowestLoadWindow`.

    Used by the Figure 13(a) impact analysis to compare default windows
    against predicted LL windows.
    """
    return LowestLoadWindow(
        start=default_start,
        duration_minutes=duration_minutes,
        average_load=window_average_load(series, default_start, duration_minutes),
    )


def default_window_is_lowest(
    series: LoadSeries,
    default_start: int,
    day: int,
    duration_minutes: int,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
) -> bool:
    """Return whether the default backup window already coincides with the
    lowest-load window of ``day`` (up to the acceptable error bound).

    Figure 13(a) reports that 85.3% of default windows correspond to LL
    windows "by chance when default windows do not collide with high
    customer load"; this predicate reproduces that comparison.
    """
    true_window = lowest_load_window(series, day, duration_minutes)
    default_load = window_average_load(series, default_start, duration_minutes)
    if np.isnan(default_load):
        return False
    return bound.within(default_load, true_window.average_load)
