"""Individual data-validation rules.

Each rule inspects an extract against the inferred :class:`DataProperties`
and emits :class:`ValidationIssue` records.  The paper cites schema and
bound anomaly detection as the implemented rules (Section 2.2); this module
adds the closely related checks that the same machinery naturally covers:
missing input data, sparse telemetry, duplicate timestamps and non-finite
values.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.timeseries.calendar import MINUTES_PER_WEEK
from repro.timeseries.frame import LoadFrame
from repro.validation.schema import DataProperties


class ValidationSeverity(enum.Enum):
    """Severity of a validation issue."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in an extract."""

    rule: str
    severity: ValidationSeverity
    message: str
    server_id: str = ""

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "server_id": self.server_id,
        }


#: Tolerance added around the inferred load bounds before flagging values.
BOUND_SLACK = 5.0

#: Minimum fraction of a week a long week-extract should cover per server
#: before a sparsity warning is emitted.
MIN_COVERAGE_FRACTION = 0.5


def check_schema(frame: LoadFrame, properties: DataProperties) -> list[ValidationIssue]:
    """Schema anomaly detection: sampling interval and emptiness."""
    issues: list[ValidationIssue] = []
    if frame.interval_minutes != properties.interval_minutes:
        issues.append(
            ValidationIssue(
                rule="schema.interval",
                severity=ValidationSeverity.ERROR,
                message=(
                    f"extract interval {frame.interval_minutes}m does not match the "
                    f"expected {properties.interval_minutes}m"
                ),
            )
        )
    if len(frame) == 0:
        issues.append(
            ValidationIssue(
                rule="schema.empty",
                severity=ValidationSeverity.ERROR,
                message="extract contains no servers",
            )
        )
    elif len(frame) < properties.min_servers:
        issues.append(
            ValidationIssue(
                rule="schema.missing_data",
                severity=ValidationSeverity.WARNING,
                message=(
                    f"extract has only {len(frame)} servers, expected at least "
                    f"{properties.min_servers}; input data may be incomplete"
                ),
            )
        )
    return issues


def check_bounds(frame: LoadFrame, properties: DataProperties) -> list[ValidationIssue]:
    """Bound anomaly detection on the load attribute."""
    issues: list[ValidationIssue] = []
    lower = properties.load_min - BOUND_SLACK
    upper = properties.load_max + BOUND_SLACK
    for server_id, _, series in frame.items():
        if series.is_empty:
            continue
        values = series.values
        below = int(np.count_nonzero(values < lower))
        above = int(np.count_nonzero(values > upper))
        if below or above:
            issues.append(
                ValidationIssue(
                    rule="bounds.load",
                    severity=ValidationSeverity.ERROR,
                    message=(
                        f"{below + above} load values outside the expected range "
                        f"[{lower:.1f}, {upper:.1f}]"
                    ),
                    server_id=server_id,
                )
            )
    return issues


def check_finite(frame: LoadFrame) -> list[ValidationIssue]:
    """Flag NaN or infinite load values."""
    issues: list[ValidationIssue] = []
    for server_id, _, series in frame.items():
        if series.is_empty:
            continue
        bad = int(np.count_nonzero(~np.isfinite(series.values)))
        if bad:
            issues.append(
                ValidationIssue(
                    rule="values.non_finite",
                    severity=ValidationSeverity.ERROR,
                    message=f"{bad} non-finite load values",
                    server_id=server_id,
                )
            )
    return issues


def check_duplicate_timestamps(frame: LoadFrame) -> list[ValidationIssue]:
    """Flag servers with duplicated or non-increasing timestamps."""
    issues: list[ValidationIssue] = []
    for server_id, _, series in frame.items():
        if len(series) < 2:
            continue
        deltas = np.diff(series.timestamps)
        if np.any(deltas <= 0):
            issues.append(
                ValidationIssue(
                    rule="timestamps.non_increasing",
                    severity=ValidationSeverity.ERROR,
                    message="timestamps are duplicated or out of order",
                    server_id=server_id,
                )
            )
    return issues


def check_coverage(frame: LoadFrame) -> list[ValidationIssue]:
    """Warn about servers with very sparse telemetry over the extract span."""
    issues: list[ValidationIssue] = []
    for server_id, _, series in frame.items():
        if series.is_empty:
            issues.append(
                ValidationIssue(
                    rule="coverage.empty_series",
                    severity=ValidationSeverity.WARNING,
                    message="server has no telemetry in this extract",
                    server_id=server_id,
                )
            )
            continue
        expected_points = series.span_minutes / series.interval_minutes
        if expected_points <= 0:
            continue
        coverage = len(series) / expected_points
        if coverage < MIN_COVERAGE_FRACTION and series.span_minutes > MINUTES_PER_WEEK // 7:
            issues.append(
                ValidationIssue(
                    rule="coverage.sparse",
                    severity=ValidationSeverity.WARNING,
                    message=f"telemetry covers only {coverage:.0%} of the server's lifespan",
                    server_id=server_id,
                )
            )
    return issues


ALL_RULES = (
    ("schema", check_schema),
    ("bounds", check_bounds),
)

STANDALONE_RULES = (
    ("finite", check_finite),
    ("timestamps", check_duplicate_timestamps),
    ("coverage", check_coverage),
)
