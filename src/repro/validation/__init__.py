"""Data Validation Module (Sections 2.2 and 2.4).

The pipeline validates every weekly extract before training or inference.
Following the paper, the schema and data properties (min/max bounds of
numeric attributes) are *deduced from the input data*, stored, optionally
verified by a domain expert, and then used to detect schema and bound
anomalies on subsequent extracts.

* :mod:`~repro.validation.schema` -- schema/property inference and
  persistence.
* :mod:`~repro.validation.rules` -- individual validation rules (schema
  anomalies, bound anomalies, missing data, duplicate timestamps).
* :mod:`~repro.validation.validator` -- the module that runs all rules and
  produces a validation report consumed by incident management.
"""

from repro.validation.rules import ValidationIssue, ValidationSeverity
from repro.validation.schema import DataProperties, infer_properties
from repro.validation.validator import DataValidationModule, ValidationReport

__all__ = [
    "DataProperties",
    "infer_properties",
    "ValidationIssue",
    "ValidationSeverity",
    "DataValidationModule",
    "ValidationReport",
]
