"""Data Validation Module: runs all rules and produces a report."""

from __future__ import annotations

from dataclasses import dataclass

from repro.timeseries.frame import LoadFrame
from repro.validation.rules import (
    ValidationIssue,
    ValidationSeverity,
    check_bounds,
    check_coverage,
    check_duplicate_timestamps,
    check_finite,
    check_schema,
)
from repro.validation.schema import DataProperties, infer_properties


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one extract."""

    issues: tuple[ValidationIssue, ...]
    n_servers: int
    n_points: int

    @property
    def errors(self) -> tuple[ValidationIssue, ...]:
        return tuple(i for i in self.issues if i.severity is ValidationSeverity.ERROR)

    @property
    def warnings(self) -> tuple[ValidationIssue, ...]:
        return tuple(i for i in self.issues if i.severity is ValidationSeverity.WARNING)

    @property
    def passed(self) -> bool:
        """An extract passes validation when it has no error-severity issues."""
        return not self.errors

    def as_dict(self) -> dict[str, object]:
        return {
            "passed": self.passed,
            "n_servers": self.n_servers,
            "n_points": self.n_points,
            "n_errors": len(self.errors),
            "n_warnings": len(self.warnings),
            "issues": [issue.as_dict() for issue in self.issues],
        }


class DataValidationModule:
    """Validates extracts against inferred (and expert-verified) properties.

    The module can bootstrap its own :class:`DataProperties` from the first
    extract it sees (mirroring Section 2.4's "automatically deduce schema
    and other data properties from the input data"), or be constructed with
    properties loaded from a verified file.
    """

    def __init__(self, properties: DataProperties | None = None) -> None:
        self._properties = properties

    @property
    def properties(self) -> DataProperties | None:
        return self._properties

    def bootstrap(self, frame: LoadFrame) -> DataProperties:
        """Infer and retain data properties from a reference extract."""
        self._properties = infer_properties(frame)
        return self._properties

    def validate(self, frame: LoadFrame) -> ValidationReport:
        """Run every rule on ``frame`` and return the combined report."""
        if self._properties is None:
            self.bootstrap(frame)
        assert self._properties is not None

        issues: list[ValidationIssue] = []
        issues.extend(check_schema(frame, self._properties))
        issues.extend(check_bounds(frame, self._properties))
        issues.extend(check_finite(frame))
        issues.extend(check_duplicate_timestamps(frame))
        issues.extend(check_coverage(frame))

        return ValidationReport(
            issues=tuple(issues),
            n_servers=len(frame),
            n_points=frame.total_points(),
        )
