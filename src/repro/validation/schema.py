"""Schema and data-property inference (Section 2.4).

To adapt the validation module to a new scenario without code changes, the
schema and simple data properties (min/max of numeric attributes, expected
sampling interval, expected coverage) are deduced from a reference extract,
persisted to a JSON file, reviewed by a domain expert and then enforced on
later extracts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.timeseries.frame import LoadFrame


@dataclass(frozen=True)
class DataProperties:
    """Inferred schema and value-bound properties of an extract.

    Attributes
    ----------
    columns:
        The expected CSV columns.
    load_min / load_max:
        Observed bounds of the load attribute; the bound-anomaly rule flags
        extracts whose values fall outside ``[load_min - slack, load_max + slack]``.
    interval_minutes:
        Expected sampling interval.
    min_servers:
        Minimum plausible number of servers per extract, used to detect
        missing or truncated input data.
    verified_by:
        Name of the domain expert who signed off on the properties file
        (empty until verified).
    """

    columns: tuple[str, ...]
    load_min: float
    load_max: float
    interval_minutes: int
    min_servers: int = 1
    verified_by: str = ""

    def verified(self, expert: str) -> "DataProperties":
        """Return a copy marked as verified by ``expert``."""
        return DataProperties(
            columns=self.columns,
            load_min=self.load_min,
            load_max=self.load_max,
            interval_minutes=self.interval_minutes,
            min_servers=self.min_servers,
            verified_by=expert,
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "columns": list(self.columns),
            "load_min": self.load_min,
            "load_max": self.load_max,
            "interval_minutes": self.interval_minutes,
            "min_servers": self.min_servers,
            "verified_by": self.verified_by,
        }

    # ------------------------------------------------------------------ #
    # Persistence ("stored in a file ... verified by a domain expert")
    # ------------------------------------------------------------------ #

    def save(self, path: str | Path) -> None:
        """Persist the properties to a JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "DataProperties":
        """Load properties from a JSON file produced by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            columns=tuple(payload["columns"]),
            load_min=float(payload["load_min"]),
            load_max=float(payload["load_max"]),
            interval_minutes=int(payload["interval_minutes"]),
            min_servers=int(payload.get("min_servers", 1)),
            verified_by=str(payload.get("verified_by", "")),
        )


def infer_properties(frame: LoadFrame, min_servers: int | None = None) -> DataProperties:
    """Deduce :class:`DataProperties` from a reference extract.

    The load bounds are the observed min/max across all servers; the
    expected column set is the standard extract schema.
    """
    load_min = float("inf")
    load_max = float("-inf")
    for _, _, series in frame.items():
        if series.is_empty:
            continue
        load_min = min(load_min, series.minimum())
        load_max = max(load_max, series.maximum())
    if load_min > load_max:
        load_min, load_max = 0.0, 100.0
    return DataProperties(
        columns=LoadFrame.CSV_HEADER,
        load_min=load_min,
        load_max=load_max,
        interval_minutes=frame.interval_minutes,
        min_servers=min_servers if min_servers is not None else max(1, len(frame) // 2),
    )
