"""Backup scheduling algorithm (Section 2.3).

For every server due for a full backup the next day, the algorithm:

1. verifies that the server was *predictable* for the last three weeks
   (Definition 9) -- otherwise the default backup window is kept, so a
   backup is never moved to a worse time based on predictions the system
   is not confident in;
2. extracts the predicted load for the backup day and selects the time
   window with the lowest expected customer activity that is long enough
   to fit a full backup;
3. stores the start of that window as a service-fabric property that the
   backup service reads.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass

from repro.metrics.ll_window import WindowSearchError, lowest_load_window
from repro.metrics.predictable import PredictabilityVerdict
from repro.scheduling.fabric import FabricPropertyStore
from repro.timeseries.calendar import day_index
from repro.timeseries.frame import ServerMetadata
from repro.timeseries.series import LoadSeries


class ScheduleOutcome(enum.Enum):
    """Why a server ended up with its scheduled window."""

    MOVED_TO_PREDICTED_WINDOW = "moved_to_predicted_window"
    DEFAULT_KEPT_NOT_PREDICTABLE = "default_kept_not_predictable"
    DEFAULT_KEPT_NO_PREDICTION = "default_kept_no_prediction"
    DEFAULT_KEPT_PREDICTION_UNUSABLE = "default_kept_prediction_unusable"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class BackupDecision:
    """The scheduling decision for one server's backup day."""

    server_id: str
    backup_day: int
    scheduled_start: int
    default_start: int
    outcome: ScheduleOutcome
    predicted_window_load: float = float("nan")

    @property
    def moved(self) -> bool:
        """Whether the backup was moved away from the default window."""
        return self.outcome is ScheduleOutcome.MOVED_TO_PREDICTED_WINDOW

    def as_dict(self) -> dict[str, object]:
        return {
            "server_id": self.server_id,
            "backup_day": self.backup_day,
            "scheduled_start": self.scheduled_start,
            "default_start": self.default_start,
            "outcome": self.outcome.value,
            "predicted_window_load": self.predicted_window_load,
        }


class BackupScheduler:
    """Schedules backups into predicted lowest-load windows."""

    def __init__(self, fabric: FabricPropertyStore | None = None) -> None:
        self._fabric = fabric if fabric is not None else FabricPropertyStore()

    @property
    def fabric(self) -> FabricPropertyStore:
        return self._fabric

    # ------------------------------------------------------------------ #

    def schedule_server(
        self,
        metadata: ServerMetadata,
        prediction: LoadSeries | None,
        verdict: PredictabilityVerdict | None,
    ) -> BackupDecision:
        """Decide the backup window for one server on its backup day."""
        backup_day = day_index(metadata.default_backup_start)
        default_start = metadata.default_backup_start

        if verdict is None or not verdict.predictable:
            decision = BackupDecision(
                server_id=metadata.server_id,
                backup_day=backup_day,
                scheduled_start=default_start,
                default_start=default_start,
                outcome=ScheduleOutcome.DEFAULT_KEPT_NOT_PREDICTABLE,
            )
        elif prediction is None or prediction.is_empty:
            decision = BackupDecision(
                server_id=metadata.server_id,
                backup_day=backup_day,
                scheduled_start=default_start,
                default_start=default_start,
                outcome=ScheduleOutcome.DEFAULT_KEPT_NO_PREDICTION,
            )
        else:
            try:
                window = lowest_load_window(
                    prediction, backup_day, metadata.backup_duration_minutes
                )
            except WindowSearchError:
                decision = BackupDecision(
                    server_id=metadata.server_id,
                    backup_day=backup_day,
                    scheduled_start=default_start,
                    default_start=default_start,
                    outcome=ScheduleOutcome.DEFAULT_KEPT_PREDICTION_UNUSABLE,
                )
            else:
                decision = BackupDecision(
                    server_id=metadata.server_id,
                    backup_day=backup_day,
                    scheduled_start=window.start,
                    default_start=default_start,
                    outcome=ScheduleOutcome.MOVED_TO_PREDICTED_WINDOW,
                    predicted_window_load=window.average_load,
                )

        self._fabric.set_backup_window_start(metadata.server_id, decision.scheduled_start)
        return decision

    def schedule_fleet(
        self,
        metadata_by_server: Mapping[str, ServerMetadata],
        predictions: Mapping[str, LoadSeries],
        verdicts: Mapping[str, PredictabilityVerdict],
    ) -> dict[str, BackupDecision]:
        """Schedule every server due for backup."""
        decisions: dict[str, BackupDecision] = {}
        for server_id, metadata in metadata_by_server.items():
            decisions[server_id] = self.schedule_server(
                metadata,
                predictions.get(server_id),
                verdicts.get(server_id),
            )
        return decisions
