"""Service-fabric property store.

The backup scheduling algorithm "stores the start time of this window as a
service fabric property of respective PostgreSQL and MySQL database
instances.  This property is used by the backup service to schedule
backups" (Section 2.3).  This module reproduces that tiny but load-bearing
interface: a per-server property bag with versioned writes.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Property name used for the scheduled backup window start.
BACKUP_WINDOW_PROPERTY = "scheduled_backup_start"


@dataclass(frozen=True)
class PropertyRecord:
    """One property value with its write version."""

    name: str
    value: object
    version: int


class FabricPropertyStore:
    """Per-server named properties with last-writer-wins versioning."""

    def __init__(self) -> None:
        self._properties: dict[str, dict[str, PropertyRecord]] = {}

    def set_property(self, server_id: str, name: str, value: object) -> PropertyRecord:
        """Set a property on a server, bumping its version."""
        server_props = self._properties.setdefault(server_id, {})
        previous = server_props.get(name)
        record = PropertyRecord(
            name=name,
            value=value,
            version=1 if previous is None else previous.version + 1,
        )
        server_props[name] = record
        return record

    def get_property(self, server_id: str, name: str, default: object = None) -> object:
        """Read a property value, returning ``default`` when unset."""
        record = self._properties.get(server_id, {}).get(name)
        return default if record is None else record.value

    def get_record(self, server_id: str, name: str) -> PropertyRecord | None:
        """Read the full property record (value + version)."""
        return self._properties.get(server_id, {}).get(name)

    def clear_property(self, server_id: str, name: str) -> bool:
        """Remove a property; returns whether it existed."""
        server_props = self._properties.get(server_id, {})
        return server_props.pop(name, None) is not None

    def servers_with_property(self, name: str) -> list[str]:
        """All servers that currently carry the named property."""
        return sorted(
            server_id
            for server_id, props in self._properties.items()
            if name in props
        )

    def set_backup_window_start(self, server_id: str, start_minute: int) -> PropertyRecord:
        """Convenience wrapper for the property the backup service reads."""
        return self.set_property(server_id, BACKUP_WINDOW_PROPERTY, int(start_minute))

    def backup_window_start(self, server_id: str) -> int | None:
        """The scheduled backup start minute for a server, if set."""
        value = self.get_property(server_id, BACKUP_WINDOW_PROPERTY)
        return None if value is None else int(value)
