"""Backup-scheduling impact analysis (Section 6.2, Figure 13(a)).

Given the true load, the scheduling decisions and the per-server
classification, the analyzer reproduces the quantities of Figure 13(a):

* the share of backups that were *moved* from a default window that
  collided with customer activity into a correctly chosen lowest-load
  window,
* the share of default windows that already corresponded to the lowest-load
  window "by chance",
* the share of scheduled windows that were not chosen correctly
  (unexpected change of customer behaviour), and
* the resulting hours of improved customer experience, overall and for
  busy servers (load over 60% of capacity).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.features.extractor import BUSY_LOAD_THRESHOLD, ServerFeatures
from repro.metrics.bucket_ratio import DEFAULT_ERROR_BOUND, ErrorBound
from repro.metrics.ll_window import (
    WindowSearchError,
    default_window_is_lowest,
    lowest_load_window,
    window_average_load,
)
from repro.scheduling.backup import BackupDecision
from repro.timeseries.frame import LoadFrame


@dataclass(frozen=True)
class BackupImpactReport:
    """Aggregated impact of the scheduler over one fleet and one backup day."""

    n_servers: int
    pct_moved_to_ll_window: float
    pct_default_already_ll: float
    pct_windows_incorrect: float
    pct_stable_default_already_ll: float
    pct_busy_collisions_avoided: float
    improved_hours: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n_servers": self.n_servers,
            "pct_moved_to_ll_window": self.pct_moved_to_ll_window,
            "pct_default_already_ll": self.pct_default_already_ll,
            "pct_windows_incorrect": self.pct_windows_incorrect,
            "pct_stable_default_already_ll": self.pct_stable_default_already_ll,
            "pct_busy_collisions_avoided": self.pct_busy_collisions_avoided,
            "improved_hours": self.improved_hours,
        }


class BackupImpactAnalyzer:
    """Computes :class:`BackupImpactReport` from decisions and true load."""

    def __init__(self, bound: ErrorBound = DEFAULT_ERROR_BOUND) -> None:
        self._bound = bound

    def analyze(
        self,
        true_frame: LoadFrame,
        decisions: Mapping[str, BackupDecision],
        features: Mapping[str, ServerFeatures],
    ) -> BackupImpactReport:
        """Analyse one backup day's decisions against the observed load."""
        n_servers = 0
        n_moved_correctly = 0
        n_default_already_ll = 0
        n_incorrect = 0
        n_stable = 0
        n_stable_default_ll = 0
        n_busy = 0
        n_busy_avoided = 0
        improved_minutes = 0.0

        for server_id, decision in decisions.items():
            if server_id not in true_frame:
                continue
            series = true_frame.series(server_id)
            metadata = true_frame.metadata(server_id)
            duration = metadata.backup_duration_minutes
            day = decision.backup_day
            try:
                true_window = lowest_load_window(series, day, duration)
            except WindowSearchError:
                continue
            n_servers += 1

            default_is_ll = default_window_is_lowest(
                series, decision.default_start, day, duration, self._bound
            )
            if default_is_ll:
                n_default_already_ll += 1

            scheduled_load = window_average_load(series, decision.scheduled_start, duration)
            scheduled_is_correct = self._bound.within(scheduled_load, true_window.average_load)
            if not scheduled_is_correct:
                n_incorrect += 1

            default_load = window_average_load(series, decision.default_start, duration)
            if decision.moved and scheduled_is_correct and not default_is_ll:
                n_moved_correctly += 1
                improved_minutes += duration

            label = features[server_id].label.value if server_id in features else ""
            if label == "stable":
                n_stable += 1
                if default_is_ll:
                    n_stable_default_ll += 1

            is_busy = features[server_id].is_busy if server_id in features else False
            if is_busy:
                n_busy += 1
                default_collides = default_load > BUSY_LOAD_THRESHOLD
                scheduled_avoids = scheduled_load <= BUSY_LOAD_THRESHOLD
                if decision.moved and default_collides and scheduled_avoids:
                    n_busy_avoided += 1

        return BackupImpactReport(
            n_servers=n_servers,
            pct_moved_to_ll_window=_pct(n_moved_correctly, n_servers),
            pct_default_already_ll=_pct(n_default_already_ll, n_servers),
            pct_windows_incorrect=_pct(n_incorrect, n_servers),
            pct_stable_default_already_ll=_pct(n_stable_default_ll, n_stable),
            pct_busy_collisions_avoided=_pct(n_busy_avoided, n_busy),
            improved_hours=improved_minutes / 60.0,
        )


def _pct(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return float("nan")
    return 100.0 * numerator / denominator
