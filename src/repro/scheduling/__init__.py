"""Use-case-specific online components: backup scheduling (Section 2.3).

* :mod:`~repro.scheduling.fabric` -- the service-fabric property store the
  backup service reads window start times from.
* :mod:`~repro.scheduling.backup` -- the backup scheduling algorithm:
  verify three weeks of predictability, pick the predicted lowest-load
  window, otherwise fall back to the default window.
* :mod:`~repro.scheduling.runner` -- the per-day, per-cluster runner
  service the algorithm executes inside.
* :mod:`~repro.scheduling.impact` -- the impact analysis behind
  Figure 13(a): how many backups moved, how many defaults already were
  lowest-load windows, how many windows were chosen incorrectly.
"""

from repro.scheduling.backup import BackupDecision, BackupScheduler, ScheduleOutcome
from repro.scheduling.fabric import FabricPropertyStore
from repro.scheduling.impact import BackupImpactAnalyzer, BackupImpactReport
from repro.scheduling.runner import RunnerService

__all__ = [
    "BackupScheduler",
    "BackupDecision",
    "ScheduleOutcome",
    "FabricPropertyStore",
    "RunnerService",
    "BackupImpactAnalyzer",
    "BackupImpactReport",
]
