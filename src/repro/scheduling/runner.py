"""Runner service (Section 2.3).

"The backup scheduler runs within Master Data Service (MDS) runner per day
and cluster.  The Runner Service deploys executables which probe their
respective services resulting in measurement of availability and quality of
service.  The runner service is deployed in each Azure region."

This module reproduces the execution harness: per-region runners that
execute the backup scheduling step once per day per cluster, record probe
results and expose a simple availability summary.  Predictions are
obtained from the unified serving layer
(:class:`~repro.serving.service.PredictionService`) -- one batched
request per execution against the region's active model version -- rather
than from raw forecaster objects, so the runner automatically follows
version fallback and benefits from the prediction cache when it re-asks
for windows it already asked for.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field, replace

from repro.metrics.predictable import PredictabilityVerdict
from repro.scheduling.backup import BackupDecision, BackupScheduler
from repro.serving.api import BatchPredictionResponse, ServingError
from repro.serving.service import PredictionService
from repro.storage.datalake import DataLakeStore
from repro.storage.query import ExtractQuery
from repro.timeseries.calendar import points_per_day
from repro.timeseries.frame import ServerMetadata
from repro.timeseries.series import LoadSeries


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one availability probe of a dependent service."""

    probe_name: str
    available: bool
    detail: str = ""


@dataclass
class RunnerExecution:
    """One daily execution of the runner on one cluster."""

    region: str
    cluster: str
    day: int
    decisions: dict[str, BackupDecision] = field(default_factory=dict)
    probes: list[ProbeResult] = field(default_factory=list)
    #: Serving metadata of the prediction batch this execution consumed
    #: (``None`` when probes failed or no model version was active).
    serving: BatchPredictionResponse | None = None

    @property
    def succeeded(self) -> bool:
        return all(probe.available for probe in self.probes)


class RunnerService:
    """Per-region runner that executes the backup scheduler per day/cluster.

    Parameters
    ----------
    region:
        Region this runner is deployed in; only this region's servers are
        scheduled and only this region's model versions are queried.
    scheduler:
        Backup scheduler executed per day/cluster.
    probes:
        Availability probes run before every execution.
    serving:
        The prediction-serving layer.  Without one the runner can still
        execute (probes run, scheduling keeps default windows), mirroring
        a region whose model deployment has not happened yet.
    """

    def __init__(
        self,
        region: str,
        scheduler: BackupScheduler | None = None,
        probes: Mapping[str, Callable[[], bool]] | None = None,
        serving: PredictionService | None = None,
    ) -> None:
        self._region = region
        self._scheduler = scheduler if scheduler is not None else BackupScheduler()
        self._probes = dict(probes) if probes is not None else {}
        self._serving = serving
        self._executions: list[RunnerExecution] = []

    @property
    def region(self) -> str:
        return self._region

    @property
    def scheduler(self) -> BackupScheduler:
        return self._scheduler

    @property
    def serving(self) -> PredictionService | None:
        return self._serving

    def add_probe(self, name: str, probe: Callable[[], bool]) -> None:
        """Register an availability probe run before every execution."""
        self._probes[name] = probe

    def executions(self) -> list[RunnerExecution]:
        """All executions performed so far."""
        return list(self._executions)

    def availability(self) -> float:
        """Fraction of executions whose probes all succeeded (1.0 when none ran)."""
        if not self._executions:
            return 1.0
        return sum(1 for e in self._executions if e.succeeded) / len(self._executions)

    # ------------------------------------------------------------------ #

    def run_day(
        self,
        cluster: str,
        day: int,
        metadata_by_server: Mapping[str, ServerMetadata],
        verdicts: Mapping[str, PredictabilityVerdict],
        horizon_points: int | None = None,
        interval_minutes: int = 5,
    ) -> RunnerExecution:
        """Execute the scheduling step for one cluster on one day.

        ``horizon_points`` is the prediction horizon requested from the
        serving layer (default: one day at ``interval_minutes``).  Servers
        the serving version cannot score keep their default windows (they
        surface in ``execution.serving.skipped`` / ``failed``), and a
        region without any active version schedules everything into the
        default windows rather than failing the execution.
        """
        execution = RunnerExecution(region=self._region, cluster=cluster, day=day)
        for name, probe in self._probes.items():
            try:
                available = bool(probe())
                detail = ""
            except Exception as exc:  # probes must never crash the runner
                available = False
                detail = str(exc)
            execution.probes.append(ProbeResult(probe_name=name, available=available, detail=detail))

        if execution.succeeded:
            due = {
                server_id: metadata
                for server_id, metadata in metadata_by_server.items()
                if metadata.region == self._region
            }
            predictions = self._fetch_predictions(
                due,
                horizon_points
                if horizon_points is not None
                else points_per_day(interval_minutes),
                execution,
            )
            execution.decisions = self._scheduler.schedule_fleet(due, predictions, verdicts)
        self._executions.append(execution)
        return execution

    def run_day_from_lake(
        self,
        cluster: str,
        day: int,
        lake: DataLakeStore,
        verdicts: Mapping[str, PredictabilityVerdict],
        query: ExtractQuery | None = None,
        principal: str | None = None,
        horizon_points: int | None = None,
        interval_minutes: int = 5,
    ) -> RunnerExecution:
        """Execute one scheduling step with the due set streamed from a lake.

        The runner only needs each due server's *metadata* (backup window,
        duration), never its telemetry values, so the lake is walked with
        :meth:`~repro.storage.datalake.DataLakeStore.scan` under a
        timestamps-only column projection: servers stream one at a time
        (no whole-extract frame in runner memory) and, for ``.sgx``
        extracts, the values buffers are never decoded or checksummed.
        ``query`` narrows the walk (weeks, server allow-list, ...); its
        region scope is forced to this runner's region either way.
        """
        base = query if query is not None else ExtractQuery()
        q = replace(base, regions=(self._region,), columns=("timestamps",))
        metadata_by_server: dict[str, ServerMetadata] = {}
        for _key, metadata, _series in lake.scan(q, principal=principal):
            metadata_by_server.setdefault(metadata.server_id, metadata)
        return self.run_day(
            cluster,
            day,
            metadata_by_server,
            verdicts,
            horizon_points=horizon_points,
            interval_minutes=interval_minutes,
        )

    def _fetch_predictions(
        self,
        due: Mapping[str, ServerMetadata],
        horizon_points: int,
        execution: RunnerExecution,
    ) -> dict[str, LoadSeries]:
        if self._serving is None or not due:
            return {}
        try:
            batch = self._serving.predict_batch(
                region=self._region,
                n_points=horizon_points,
                server_ids=sorted(due),
            )
        except ServingError:
            # No deployed/active version yet: scheduling degrades to the
            # default windows, exactly like an unpredictable fleet.
            return {}
        execution.serving = batch
        return batch.predictions()
