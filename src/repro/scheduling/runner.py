"""Runner service (Section 2.3).

"The backup scheduler runs within Master Data Service (MDS) runner per day
and cluster.  The Runner Service deploys executables which probe their
respective services resulting in measurement of availability and quality of
service.  The runner service is deployed in each Azure region."

This module reproduces the execution harness: per-region runners that
execute the backup scheduling step once per day per cluster, record probe
results and expose a simple availability summary.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.metrics.predictable import PredictabilityVerdict
from repro.scheduling.backup import BackupDecision, BackupScheduler
from repro.timeseries.frame import ServerMetadata
from repro.timeseries.series import LoadSeries


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one availability probe of a dependent service."""

    probe_name: str
    available: bool
    detail: str = ""


@dataclass
class RunnerExecution:
    """One daily execution of the runner on one cluster."""

    region: str
    cluster: str
    day: int
    decisions: dict[str, BackupDecision] = field(default_factory=dict)
    probes: list[ProbeResult] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return all(probe.available for probe in self.probes)


class RunnerService:
    """Per-region runner that executes the backup scheduler per day/cluster."""

    def __init__(
        self,
        region: str,
        scheduler: BackupScheduler | None = None,
        probes: Mapping[str, Callable[[], bool]] | None = None,
    ) -> None:
        self._region = region
        self._scheduler = scheduler if scheduler is not None else BackupScheduler()
        self._probes = dict(probes) if probes is not None else {}
        self._executions: list[RunnerExecution] = []

    @property
    def region(self) -> str:
        return self._region

    @property
    def scheduler(self) -> BackupScheduler:
        return self._scheduler

    def add_probe(self, name: str, probe: Callable[[], bool]) -> None:
        """Register an availability probe run before every execution."""
        self._probes[name] = probe

    def executions(self) -> list[RunnerExecution]:
        """All executions performed so far."""
        return list(self._executions)

    def availability(self) -> float:
        """Fraction of executions whose probes all succeeded (1.0 when none ran)."""
        if not self._executions:
            return 1.0
        return sum(1 for e in self._executions if e.succeeded) / len(self._executions)

    # ------------------------------------------------------------------ #

    def run_day(
        self,
        cluster: str,
        day: int,
        metadata_by_server: Mapping[str, ServerMetadata],
        predictions: Mapping[str, LoadSeries],
        verdicts: Mapping[str, PredictabilityVerdict],
    ) -> RunnerExecution:
        """Execute the scheduling step for one cluster on one day."""
        execution = RunnerExecution(region=self._region, cluster=cluster, day=day)
        for name, probe in self._probes.items():
            try:
                available = bool(probe())
                detail = ""
            except Exception as exc:  # probes must never crash the runner
                available = False
                detail = str(exc)
            execution.probes.append(ProbeResult(probe_name=name, available=available, detail=detail))

        if execution.succeeded:
            due = {
                server_id: metadata
                for server_id, metadata in metadata_by_server.items()
                if metadata.region == self._region
            }
            execution.decisions = self._scheduler.schedule_fleet(due, predictions, verdicts)
        self._executions.append(execution)
        return execution
