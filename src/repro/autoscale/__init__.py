"""Preemptive auto-scale of SQL databases (Appendix A).

The second Seagull use case predicts the CPU load of single SQL databases
24 hours ahead (15-minute granularity) and uses standard error metrics
(Mean NRMSE, MASE) instead of the lowest-load-window metrics:

* :mod:`~repro.autoscale.classification` -- stable vs. unstable databases
  under the standard-deviation rule (Definition 10).
* :mod:`~repro.autoscale.predictor` -- per-database 24-hour forecasts per
  model, with training/inference timing and the Appendix A error metrics
  (Figures 16 and 17).
* :mod:`~repro.autoscale.policy` -- a preemptive scaling policy that turns
  the forecasts into scale-up/scale-down recommendations, plus the
  capacity-headroom analysis behind Figure 13(b).
"""

from repro.autoscale.classification import DatabaseClassification, classify_databases
from repro.autoscale.policy import AutoscalePolicy, ScaleAction, ScaleRecommendation
from repro.autoscale.predictor import AutoscaleEvaluation, AutoscalePredictor, ModelScore

__all__ = [
    "classify_databases",
    "DatabaseClassification",
    "AutoscalePredictor",
    "AutoscaleEvaluation",
    "ModelScore",
    "AutoscalePolicy",
    "ScaleAction",
    "ScaleRecommendation",
]
