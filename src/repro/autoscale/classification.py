"""SQL database classification for the auto-scale use case (Appendix A.1).

Definition 10: a database is *stable* when its variation does not exceed
one standard deviation over the last three days of the evaluated period;
otherwise it is unstable.  The paper reports 19.36% of sampled databases as
stable under this rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.stability import is_stable_database
from repro.timeseries.frame import LoadFrame


@dataclass(frozen=True)
class DatabaseClassification:
    """Stable/unstable split of a database fleet."""

    stable_ids: tuple[str, ...]
    unstable_ids: tuple[str, ...]

    @property
    def n_databases(self) -> int:
        return len(self.stable_ids) + len(self.unstable_ids)

    @property
    def pct_stable(self) -> float:
        if self.n_databases == 0:
            return float("nan")
        return 100.0 * len(self.stable_ids) / self.n_databases

    @property
    def pct_unstable(self) -> float:
        if self.n_databases == 0:
            return float("nan")
        return 100.0 * len(self.unstable_ids) / self.n_databases

    def as_dict(self) -> dict[str, object]:
        return {
            "n_databases": self.n_databases,
            "n_stable": len(self.stable_ids),
            "n_unstable": len(self.unstable_ids),
            "pct_stable": self.pct_stable,
            "pct_unstable": self.pct_unstable,
        }


def classify_databases(
    frame: LoadFrame,
    evaluation_days: int = 3,
    n_std: float = 1.0,
) -> DatabaseClassification:
    """Split a database fleet into stable and unstable per Definition 10."""
    stable: list[str] = []
    unstable: list[str] = []
    for server_id, _, series in frame.items():
        if is_stable_database(series, evaluation_days=evaluation_days, n_std=n_std):
            stable.append(server_id)
        else:
            unstable.append(server_id)
    return DatabaseClassification(stable_ids=tuple(stable), unstable_ids=tuple(unstable))
