"""Preemptive auto-scale policy and capacity-headroom analysis.

The paper's Figure 13(b) observes that only 3.7% of servers reach their CPU
capacity within a week, "which opens up opportunities to overbook or
auto-scale resources".  This module turns 24-hour-ahead forecasts into
preemptive scale recommendations and computes the capacity-headroom
histogram used by that figure.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.timeseries.frame import LoadFrame
from repro.timeseries.series import LoadSeries


class ScaleAction(enum.Enum):
    """Recommended action for the next 24 hours."""

    SCALE_UP = "scale_up"
    SCALE_DOWN = "scale_down"
    HOLD = "hold"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ScaleRecommendation:
    """One database's recommendation derived from its forecast."""

    database_id: str
    action: ScaleAction
    predicted_peak: float
    predicted_mean: float
    headroom_pct: float

    def as_dict(self) -> dict[str, object]:
        return {
            "database_id": self.database_id,
            "action": self.action.value,
            "predicted_peak": self.predicted_peak,
            "predicted_mean": self.predicted_mean,
            "headroom_pct": self.headroom_pct,
        }


class AutoscalePolicy:
    """Threshold policy on the forecast peak and mean load.

    Parameters
    ----------
    scale_up_threshold:
        Predicted peak load (percent of current capacity) above which the
        database should be scaled up ahead of time.
    scale_down_threshold:
        Predicted peak load below which the database can be scaled down to
        save resources.
    """

    def __init__(
        self,
        scale_up_threshold: float = 80.0,
        scale_down_threshold: float = 30.0,
    ) -> None:
        if scale_down_threshold >= scale_up_threshold:
            raise ValueError("scale_down_threshold must be below scale_up_threshold")
        self._up = scale_up_threshold
        self._down = scale_down_threshold

    def recommend(self, database_id: str, forecast: LoadSeries) -> ScaleRecommendation:
        """Recommendation for one database from its 24-hour forecast."""
        if forecast.is_empty:
            return ScaleRecommendation(
                database_id=database_id,
                action=ScaleAction.HOLD,
                predicted_peak=float("nan"),
                predicted_mean=float("nan"),
                headroom_pct=float("nan"),
            )
        peak = forecast.maximum()
        mean = forecast.mean()
        action = (
            ScaleAction.SCALE_UP
            if peak >= self._up
            else ScaleAction.SCALE_DOWN if peak <= self._down else ScaleAction.HOLD
        )
        return ScaleRecommendation(
            database_id=database_id,
            action=action,
            predicted_peak=peak,
            predicted_mean=mean,
            headroom_pct=max(0.0, 100.0 - peak),
        )

    def recommend_fleet(
        self, forecasts: Mapping[str, LoadSeries]
    ) -> dict[str, ScaleRecommendation]:
        """Recommendations for a whole fleet of forecasts."""
        return {
            database_id: self.recommend(database_id, forecast)
            for database_id, forecast in forecasts.items()
        }

    def action_counts(
        self, recommendations: Mapping[str, ScaleRecommendation]
    ) -> dict[str, int]:
        """Number of databases per recommended action."""
        counts = {action.value: 0 for action in ScaleAction}
        for recommendation in recommendations.values():
            counts[recommendation.action.value] += 1
        return counts


def capacity_headroom_histogram(
    frame: LoadFrame,
    bin_edges: tuple[float, ...] = (20.0, 40.0, 60.0, 80.0, 99.0, 100.1),
) -> dict[str, float]:
    """Percentage of servers per maximal observed CPU load bucket.

    This is the Figure 13(b) histogram computed directly on observed load;
    the last bucket counts servers that reach capacity.
    """
    max_loads = [
        series.maximum() for _, _, series in frame.items() if not series.is_empty
    ]
    if not max_loads:
        return {}
    max_loads = np.asarray(max_loads)
    histogram: dict[str, float] = {}
    previous = 0.0
    remaining = np.ones(max_loads.shape[0], dtype=bool)
    for edge in bin_edges:
        in_bin = remaining & (max_loads < edge)
        label = f"{previous:g}-{min(edge, 100):g}%"
        histogram[label] = 100.0 * float(np.count_nonzero(in_bin)) / max_loads.shape[0]
        remaining &= ~in_bin
        previous = edge
    if np.any(remaining):
        histogram["100%+"] = 100.0 * float(np.count_nonzero(remaining)) / max_loads.shape[0]
    return histogram


def pct_reaching_capacity(frame: LoadFrame, capacity_threshold: float = 99.0) -> float:
    """Percentage of servers whose observed weekly maximum reaches capacity."""
    max_loads = [
        series.maximum() for _, _, series in frame.items() if not series.is_empty
    ]
    if not max_loads:
        return float("nan")
    reaching = sum(1 for value in max_loads if value >= capacity_threshold)
    return 100.0 * reaching / len(max_loads)
