"""24-hour-ahead load prediction for SQL databases (Appendix A.3).

For each database the predictor fits a model on one week of historical
load and forecasts the next 24 hours.  It records per-model training and
inference time (Figure 17) and evaluates the forecasts with Mean NRMSE and
MASE (Figure 16).

Fitted models are not held and invoked directly: each model comparison
deploys its per-database forecasters as one version into the unified
serving layer (region ``autoscale/<model>``) and obtains every forecast
through :class:`~repro.serving.service.PredictionService`.  Repeated
evaluations of an unchanged deployment are therefore answered from the
prediction cache, and each forecast carries its serving metadata
(version, latency, cache-hit flag).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.standard import mase, mean_nrmse
from repro.models.base import ForecastError, Forecaster
from repro.models.registry import create_forecaster
from repro.serving.service import PredictionService
from repro.timeseries.calendar import MINUTES_PER_DAY, points_per_day
from repro.timeseries.frame import LoadFrame
from repro.timeseries.series import LoadSeries

#: Serving-region prefix under which autoscale deployments are versioned.
AUTOSCALE_REGION_PREFIX = "autoscale/"


def autoscale_region(model_name: str) -> str:
    """Serving region that holds the autoscale deployments of one model."""
    return f"{AUTOSCALE_REGION_PREFIX}{model_name}"


@dataclass(frozen=True)
class DatabaseForecast:
    """Forecast and error metrics for one database."""

    database_id: str
    model_name: str
    forecast: LoadSeries
    nrmse: float
    mase: float
    fit_seconds: float
    inference_seconds: float
    #: Version of the serving deployment that answered, and whether the
    #: forecast came from the prediction cache.
    served_by_version: int = 0
    cache_hit: bool = False


@dataclass(frozen=True)
class ModelScore:
    """Fleet-level aggregation per model (one row of Figures 16/17)."""

    model_name: str
    n_databases: int
    mean_nrmse: float
    mean_mase: float
    total_fit_seconds: float
    total_inference_seconds: float

    def as_dict(self) -> dict[str, float]:
        return {
            "model_name": self.model_name,
            "n_databases": self.n_databases,
            "mean_nrmse": self.mean_nrmse,
            "mean_mase": self.mean_mase,
            "total_fit_seconds": self.total_fit_seconds,
            "total_inference_seconds": self.total_inference_seconds,
        }


@dataclass
class AutoscaleEvaluation:
    """All per-database forecasts plus the per-model summary."""

    forecasts: dict[str, list[DatabaseForecast]] = field(default_factory=dict)

    def score(self, model_name: str) -> ModelScore:
        entries = self.forecasts.get(model_name, [])
        nrmses = [f.nrmse for f in entries if not np.isnan(f.nrmse)]
        mases = [f.mase for f in entries if not np.isnan(f.mase)]
        return ModelScore(
            model_name=model_name,
            n_databases=len(entries),
            mean_nrmse=float(np.mean(nrmses)) if nrmses else float("nan"),
            mean_mase=float(np.mean(mases)) if mases else float("nan"),
            total_fit_seconds=sum(f.fit_seconds for f in entries),
            total_inference_seconds=sum(f.inference_seconds for f in entries),
        )

    def scores(self) -> list[ModelScore]:
        return [self.score(model_name) for model_name in sorted(self.forecasts)]


@dataclass(frozen=True)
class _FittedDatabase:
    """One database's fitted forecaster plus its evaluation context."""

    database_id: str
    forecaster: Forecaster
    history: LoadSeries
    truth: LoadSeries
    fit_seconds: float
    n_points: int


class AutoscalePredictor:
    """Runs the Appendix A forecasting comparison over a database fleet."""

    def __init__(self, training_days: int = 7, serving: PredictionService | None = None) -> None:
        if training_days < 1:
            raise ValueError("training_days must be at least 1")
        self._training_days = training_days
        self._serving = serving if serving is not None else PredictionService()

    @property
    def serving(self) -> PredictionService:
        """The serving layer forecasts are obtained through."""
        return self._serving

    # ------------------------------------------------------------------ #

    def _fit_database(
        self,
        database_id: str,
        series: LoadSeries,
        model_name: str,
        target_day: int,
    ) -> _FittedDatabase | None:
        """Fit one database's forecaster on the week preceding ``target_day``.

        Returns ``None`` when the database lacks history or the model
        cannot be fit (the paper simply skips such databases).
        """
        day_start = target_day * MINUTES_PER_DAY
        history = series.slice(day_start - self._training_days * MINUTES_PER_DAY, day_start)
        truth = series.day(target_day)
        if history.is_empty or truth.is_empty:
            return None
        forecaster = create_forecaster(model_name)
        try:
            forecaster.fit(history)
        except ForecastError:
            return None
        fit_seconds = forecaster.fit_result.fit_seconds if forecaster.fit_result else 0.0
        return _FittedDatabase(
            database_id=database_id,
            forecaster=forecaster,
            history=history,
            truth=truth,
            fit_seconds=fit_seconds,
            n_points=points_per_day(series.interval_minutes),
        )

    def _serve_deployment(
        self, model_name: str, trained_week: int, fitted: list[_FittedDatabase]
    ) -> list[DatabaseForecast]:
        """Deploy fitted forecasters as one version and serve every forecast."""
        if not fitted:
            return []
        region = autoscale_region(model_name)
        self._serving.deploy(
            region=region,
            model_name=model_name,
            trained_week=trained_week,
            forecasters={f.database_id: f.forecaster for f in fitted},
            notes=f"autoscale comparison over {len(fitted)} databases",
        )
        by_id = {f.database_id: f for f in fitted}
        results: list[DatabaseForecast] = []
        # Databases may need different horizon lengths (interval mixes);
        # group by horizon so each batch stays one serving call.
        horizons: dict[int, list[str]] = {}
        for f in fitted:
            horizons.setdefault(f.n_points, []).append(f.database_id)
        for n_points, database_ids in sorted(horizons.items()):
            batch = self._serving.predict_batch(
                region=region, n_points=n_points, server_ids=database_ids
            )
            for response in batch.responses:
                entry = by_id[response.server_id]
                forecast = response.series
                results.append(
                    DatabaseForecast(
                        database_id=entry.database_id,
                        model_name=model_name,
                        forecast=forecast,
                        nrmse=mean_nrmse(forecast, entry.truth),
                        mase=mase(forecast, entry.truth, training_true=entry.history),
                        fit_seconds=entry.fit_seconds,
                        inference_seconds=response.latency_seconds,
                        served_by_version=response.served_by_version,
                        cache_hit=response.cache_hit,
                    )
                )
        return results

    # ------------------------------------------------------------------ #

    def predict_database(
        self,
        database_id: str,
        series: LoadSeries,
        model_name: str,
        target_day: int,
    ) -> DatabaseForecast | None:
        """Fit on the week preceding ``target_day`` and forecast that day.

        The forecast is served through the prediction service (a
        one-database deployment), so it carries serving metadata.  Returns
        ``None`` when the database lacks history or the model cannot be
        fit.
        """
        fitted = self._fit_database(database_id, series, model_name, target_day)
        if fitted is None:
            return None
        results = self._serve_deployment(model_name, target_day // 7, [fitted])
        return results[0] if results else None

    def evaluate_fleet(
        self,
        frame: LoadFrame,
        model_names: Iterable[str],
        target_day: int | None = None,
    ) -> AutoscaleEvaluation:
        """Run the comparison for every database and model.

        ``target_day`` defaults to each database's last fully covered day.
        Each model's fitted forecasters are deployed as **one** serving
        version covering the whole fleet, then served with batched
        requests.
        """
        evaluation = AutoscaleEvaluation()
        for model_name in model_names:
            fitted: list[_FittedDatabase] = []
            trained_week = 0
            for database_id, _, series in frame.items():
                if series.is_empty:
                    continue
                day = target_day if target_day is not None else series.days()[-1]
                trained_week = max(trained_week, day // 7)
                entry = self._fit_database(database_id, series, model_name, day)
                if entry is not None:
                    fitted.append(entry)
            evaluation.forecasts[model_name] = self._serve_deployment(
                model_name, trained_week, fitted
            )
        return evaluation
