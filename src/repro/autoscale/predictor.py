"""24-hour-ahead load prediction for SQL databases (Appendix A.3).

For each database the predictor fits a model on one week of historical
load and forecasts the next 24 hours.  It records per-model training and
inference time (Figure 17) and evaluates the forecasts with Mean NRMSE and
MASE (Figure 16).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.standard import mase, mean_nrmse
from repro.models.base import ForecastError
from repro.models.registry import create_forecaster
from repro.timeseries.calendar import MINUTES_PER_DAY, day_index, points_per_day
from repro.timeseries.frame import LoadFrame
from repro.timeseries.series import LoadSeries


@dataclass(frozen=True)
class DatabaseForecast:
    """Forecast and error metrics for one database."""

    database_id: str
    model_name: str
    forecast: LoadSeries
    nrmse: float
    mase: float
    fit_seconds: float
    inference_seconds: float


@dataclass(frozen=True)
class ModelScore:
    """Fleet-level aggregation per model (one row of Figures 16/17)."""

    model_name: str
    n_databases: int
    mean_nrmse: float
    mean_mase: float
    total_fit_seconds: float
    total_inference_seconds: float

    def as_dict(self) -> dict[str, float]:
        return {
            "model_name": self.model_name,
            "n_databases": self.n_databases,
            "mean_nrmse": self.mean_nrmse,
            "mean_mase": self.mean_mase,
            "total_fit_seconds": self.total_fit_seconds,
            "total_inference_seconds": self.total_inference_seconds,
        }


@dataclass
class AutoscaleEvaluation:
    """All per-database forecasts plus the per-model summary."""

    forecasts: dict[str, list[DatabaseForecast]] = field(default_factory=dict)

    def score(self, model_name: str) -> ModelScore:
        entries = self.forecasts.get(model_name, [])
        nrmses = [f.nrmse for f in entries if not np.isnan(f.nrmse)]
        mases = [f.mase for f in entries if not np.isnan(f.mase)]
        return ModelScore(
            model_name=model_name,
            n_databases=len(entries),
            mean_nrmse=float(np.mean(nrmses)) if nrmses else float("nan"),
            mean_mase=float(np.mean(mases)) if mases else float("nan"),
            total_fit_seconds=sum(f.fit_seconds for f in entries),
            total_inference_seconds=sum(f.inference_seconds for f in entries),
        )

    def scores(self) -> list[ModelScore]:
        return [self.score(model_name) for model_name in sorted(self.forecasts)]


class AutoscalePredictor:
    """Runs the Appendix A forecasting comparison over a database fleet."""

    def __init__(self, training_days: int = 7) -> None:
        if training_days < 1:
            raise ValueError("training_days must be at least 1")
        self._training_days = training_days

    def predict_database(
        self,
        database_id: str,
        series: LoadSeries,
        model_name: str,
        target_day: int,
    ) -> DatabaseForecast | None:
        """Fit on the week preceding ``target_day`` and forecast that day.

        Returns ``None`` when the database lacks history or the model cannot
        be fit (the paper simply skips such databases).
        """
        day_start = target_day * MINUTES_PER_DAY
        history = series.slice(day_start - self._training_days * MINUTES_PER_DAY, day_start)
        truth = series.day(target_day)
        if history.is_empty or truth.is_empty:
            return None
        forecaster = create_forecaster(model_name)
        points = points_per_day(series.interval_minutes)
        try:
            forecaster.fit(history)
            forecast = forecaster.predict(points)
        except ForecastError:
            return None
        fit_seconds = forecaster.fit_result.fit_seconds if forecaster.fit_result else 0.0
        # Inference cost is measured separately from fit cost by re-timing a
        # fresh predict call; persistent forecast has essentially zero cost.
        import time

        started = time.perf_counter()
        forecaster.predict(points)
        inference_seconds = time.perf_counter() - started
        return DatabaseForecast(
            database_id=database_id,
            model_name=model_name,
            forecast=forecast,
            nrmse=mean_nrmse(forecast, truth),
            mase=mase(forecast, truth, training_true=history),
            fit_seconds=fit_seconds,
            inference_seconds=inference_seconds,
        )

    def evaluate_fleet(
        self,
        frame: LoadFrame,
        model_names: Iterable[str],
        target_day: int | None = None,
    ) -> AutoscaleEvaluation:
        """Run the comparison for every database and model.

        ``target_day`` defaults to each database's last fully covered day.
        """
        evaluation = AutoscaleEvaluation()
        for model_name in model_names:
            results: list[DatabaseForecast] = []
            for database_id, _, series in frame.items():
                if series.is_empty:
                    continue
                day = target_day if target_day is not None else series.days()[-1]
                forecast = self.predict_database(database_id, series, model_name, day)
                if forecast is not None:
                    results.append(forecast)
            evaluation.forecasts[model_name] = results
        return evaluation
