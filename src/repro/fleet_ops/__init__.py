"""Fleet-scale orchestration of the Seagull pipeline.

The paper's system runs its forecasting pipeline per region across the
entire cloud fleet (Section 2.1).  This package provides that layer for
the reproduction:

* :class:`~repro.fleet_ops.orchestrator.FleetOrchestrator` -- shards
  ``(region, week)`` work units across a shared
  :class:`~repro.parallel.executor.PartitionedExecutor` and consolidates
  the results, with a two-level artifact cache (whole-unit outcomes keyed
  by raw extract fingerprint, pipeline stages keyed by extract content
  hash) so unchanged extracts cost almost nothing to re-run.
* :class:`~repro.fleet_ops.report.FleetReport` -- the fleet-level
  analogue of Figures 12(a) and 13: per-region component runtimes,
  predictability rollup, incident rollup and cache activity.
* :func:`~repro.fleet_ops.synthesis.populate_lake` -- deterministic
  synthetic extracts for every ``(region, week)`` of a fleet spec.
* ``python -m repro.fleet_ops`` -- CLI running the whole flow.
"""

from repro.fleet_ops.orchestrator import FleetOrchestrator, unit_cache_path
from repro.fleet_ops.report import FleetReport, FleetUnitOutcome
from repro.fleet_ops.synthesis import populate_lake

__all__ = [
    "FleetOrchestrator",
    "FleetReport",
    "FleetUnitOutcome",
    "populate_lake",
    "unit_cache_path",
]
