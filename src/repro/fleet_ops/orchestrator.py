"""Fleet-scale orchestration of Seagull pipeline runs.

The seed pipeline processes one region's weekly extract per call; in
production Seagull runs per region across the entire cloud fleet
(Section 2.1: "all regions of the entire cloud infrastructure").  The
orchestrator closes that gap: it shards ``(region, week)`` work units
across a shared :class:`~repro.parallel.executor.PartitionedExecutor`,
runs the full pipeline on each unit, and consolidates the per-unit
results into one :class:`~repro.fleet_ops.report.FleetReport`.

Two cache layers make re-runs cheap:

* a **unit-level outcome cache** keyed by the raw extract fingerprint --
  an unchanged extract skips ingestion, parsing and every pipeline stage;
* the pipeline's **stage-level artifact cache** (features, train/infer,
  evaluation) keyed by extract content hash -- a changed configuration
  reuses whichever stages its parameters do not touch.

Both layers live in per-unit files under ``cache_dir``, so process-pool
workers never contend on a shared cache file and warm re-runs work across
operating-system processes.

The unit of worker handoff is ``(lake handle, ExtractQuery)``: every task
carries the lake's root path plus a typed query pinned to its ``(region,
week)`` partition, and the worker re-opens the lake and reads only its
shard.  Whole extract payloads never cross the process boundary -- an
in-memory lake is spilled once to a coordinator-owned on-disk lake (same
bytes, so unit fingerprints are unchanged) and workers read from that,
which keeps coordinator RSS flat however large the fleet is.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.core.config import PipelineConfig
from repro.core.incidents import IncidentManager
from repro.core.pipeline import SeagullPipeline
from repro.core.stage_cache import STAGE_UNIT_OUTCOME
from repro.fleet_ops.report import FleetReport, FleetUnitOutcome
from repro.parallel.executor import (
    MAX_FLEET_WORKERS,
    ExecutionBackend,
    PartitionedExecutor,
    recommended_fleet_workers,
)
from repro.storage.artifacts import ArtifactStore, artifact_key
from repro.storage.datalake import DataLakeStore, ExtractKey, ExtractNotFoundError
from repro.storage.query import ExtractQuery


#: Config fields that change *how* a unit is computed, not *what* it
#: computes -- they must not invalidate cached outcomes.
_EXECUTION_ONLY_FIELDS = ("executor_backend", "n_workers")


def _unit_cache_params(config: PipelineConfig) -> dict[str, Any]:
    """Configuration fingerprint for the whole-unit outcome cache."""
    params = config.as_dict()
    for field_name in _EXECUTION_ONLY_FIELDS:
        params.pop(field_name, None)
    return params


def unit_cache_path(cache_dir: str | Path, region: str, week: int) -> Path:
    """Cache file for one ``(region, week)`` unit (one file per unit, so
    parallel workers never write the same file)."""
    return Path(cache_dir) / f"unit_{region}_week{week:04d}.json"


@dataclass(frozen=True)
class _UnitTask:
    """Everything a (possibly out-of-process) worker needs for one unit.

    Deliberately tiny and payload-free: a lake *handle* (the root path --
    for in-memory lakes, the coordinator's spill directory) plus the
    typed :class:`~repro.storage.query.ExtractQuery` describing the
    unit's shard.  The worker re-opens the lake and runs the query
    itself; format negotiation (``.sgx`` preferred, damaged ``.sgx``
    degrades to a co-located CSV) happens inside the worker's own
    :class:`DataLakeStore`.
    """

    region: str
    week: int
    config: PipelineConfig
    lake_root: str
    query: ExtractQuery
    cache_dir: str | None = None
    #: Committed manifest generation the worker pins its lake handle to:
    #: every unit of one fleet run reads the same immutable snapshot,
    #: however the live lake moves underneath it.
    generation: int | None = None


def _failed_outcome(task: _UnitTask, reason: str, wall: float) -> FleetUnitOutcome:
    return FleetUnitOutcome(
        region=task.region,
        week=task.week,
        run_id="",
        succeeded=False,
        abort_reason=reason,
        timings={},
        summary=None,
        n_servers=0,
        n_predictions=0,
        n_predictable=0,
        incidents=[
            {
                "severity": "critical",
                "source": "data_ingestion",
                "message": reason,
                "region": task.region,
            }
        ],
        cache_events={},
        wall_seconds=wall,
    )


def _execute_unit(task: _UnitTask) -> FleetUnitOutcome:
    """Run the pipeline for one ``(region, week)`` unit.

    Module-level so the process-pool backend can pickle it.  The unit's
    artifact cache is opened from ``task.cache_dir`` inside the worker --
    cache objects never cross process boundaries.
    """
    started = time.perf_counter()
    key = ExtractKey(region=task.region, week=task.week)
    lake = DataLakeStore(task.lake_root, pinned_generation=task.generation)

    # Fingerprint the raw extract bytes (no parsing yet).  The digest
    # covers the stored representation, so converting a lake to .sgx
    # refreshes unit fingerprints while stage-cache keys (frame content
    # hashes) stay valid.
    try:
        fingerprint = lake.extract_fingerprint(key)
    except ExtractNotFoundError:
        return _failed_outcome(
            task,
            f"missing input extract for {task.region} week {task.week}",
            time.perf_counter() - started,
        )

    cache: ArtifactStore | None = None
    unit_key = ""
    if task.cache_dir is not None:
        cache = ArtifactStore.at(unit_cache_path(task.cache_dir, task.region, task.week))
        unit_key = artifact_key(STAGE_UNIT_OUTCOME, fingerprint, _unit_cache_params(task.config))
        payload = cache.get(unit_key)
        if payload is not None:
            outcome: FleetUnitOutcome | None
            try:
                outcome = FleetUnitOutcome.from_payload(payload)
            except Exception:
                outcome = None
            if outcome is not None:
                return outcome.as_cache_hit(time.perf_counter() - started)

    # Ingest (unit-cache miss or caching disabled): the worker answers its
    # own shard's query against its own lake handle.
    ingest_started = time.perf_counter()
    try:
        answer = lake.query(task.query)
    except (ExtractNotFoundError, ValueError) as exc:
        return _failed_outcome(task, f"unreadable extract for {key}: {exc}", time.perf_counter() - started)
    frame = answer.frame
    ingest_seconds = time.perf_counter() - ingest_started

    # Roll up the shard's load through the aggregate query path: on .sgx
    # v4 lakes fully covered chunks reduce from chunk-table statistics
    # without their value buffers ever being decoded.  Best-effort -- a
    # lake that cannot answer it leaves the summary empty rather than
    # failing a unit whose row read succeeded.
    load: dict[str, Any] = {}
    try:
        agg = lake.query(
            replace(task.query, aggregates=("count", "mean", "max"), group_by=("day",))
        )
    except (ExtractNotFoundError, ValueError):
        pass
    else:
        groups = agg.aggregates or {}
        rows = sum(int(g["count"]) for g in groups.values())
        load = {
            "rows": rows,
            "days": len(groups),
            "mean_load": (
                sum(int(g["count"]) * float(g["mean"]) for g in groups.values()) / rows
                if rows
                else 0.0
            ),
            "peak_load": max((float(g["max"]) for g in groups.values()), default=0.0),
            "chunks_answered_from_stats": agg.stats.chunks_answered_from_stats,
            "bytes_decoded_avoided": agg.stats.bytes_decoded_avoided,
            "payload_bytes_verified": agg.stats.payload_bytes_verified,
        }

    incidents = IncidentManager()
    pipeline = SeagullPipeline(
        task.config,
        incident_manager=incidents,
        artifact_cache=cache,
    )
    result = pipeline.run(frame, region=task.region, week=task.week)
    # run() only counts a manifest check for pre-loaded frames; charge the
    # real parse cost to data_ingestion so fleet runtimes stay honest.
    result.timings["data_ingestion"] = ingest_seconds

    # Predictions flow through the unit's serving layer; roll its health
    # (version routing, request/cache counters) into the fleet report.
    serving = (
        pipeline.serving.health(task.region) if result.model_record is not None else {}
    )

    outcome = FleetUnitOutcome(
        region=task.region,
        week=task.week,
        run_id=result.run_id,
        succeeded=result.succeeded,
        abort_reason=result.abort_reason,
        timings=dict(result.timings),
        summary=result.summary.as_dict() if result.summary is not None else None,
        n_servers=len(frame),
        n_predictions=len(result.predictions),
        n_predictable=sum(1 for v in result.predictability.values() if v.predictable),
        incidents=[incident.as_dict() for incident in incidents.incidents()],
        cache_events=dict(result.cache_events),
        wall_seconds=time.perf_counter() - started,
        serving=serving,
        scan=answer.stats.as_dict(),
        load=load,
    )
    if cache is not None and result.succeeded:
        cache.put(unit_key, outcome.to_payload())
    return outcome


class FleetOrchestrator:
    """Runs the Seagull pipeline over many ``(region, week)`` extracts.

    Parameters
    ----------
    lake:
        Extract store holding the fleet's weekly extracts.  Disk-backed
        lakes are handed to workers by root path; in-memory lakes are
        spilled (byte-identical, both stored formats) to a
        coordinator-owned temporary on-disk lake that workers re-open --
        whole extract payloads never ride along inside tasks, with any
        backend.
    config:
        Pipeline configuration applied to every unit.
    backend / n_workers / executor:
        How units are sharded.  Passing an ``executor`` shares one worker
        pool across successive :meth:`run` calls; otherwise the
        orchestrator creates (and owns) one from ``backend``/``n_workers``
        at the first :meth:`run`, defaulting ``n_workers`` to
        :func:`~repro.parallel.executor.recommended_fleet_workers` for the
        unit count being sharded.
    cache_dir:
        Directory for per-unit artifact caches.  ``None`` disables
        caching.
    principal:
        Principal presented to the lake's access checks (required for
        lakes constructed with ``granted_principals``).  Out-of-process
        workers reopen disk lakes from the root path without the
        allow-list, so enforcement happens here at the coordinator.
    """

    def __init__(
        self,
        lake: DataLakeStore,
        config: PipelineConfig | None = None,
        backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
        n_workers: int | None = None,
        executor: PartitionedExecutor | None = None,
        cache_dir: str | Path | None = None,
        principal: str | None = None,
    ) -> None:
        self._lake = lake
        self._principal = principal
        self._config = config if config is not None else PipelineConfig()
        self._backend = backend
        self._n_workers = n_workers
        self._executor = executor
        self._owns_executor = executor is None
        self._cache_dir = str(cache_dir) if cache_dir is not None else None
        if self._cache_dir is not None:
            Path(self._cache_dir).mkdir(parents=True, exist_ok=True)
        self._spill_dir: str | None = None
        #: What each spilled key's stored copies looked like when spilled:
        #: key -> tuple of (format, sha256 of bytes).  Re-runs skip the
        #: disk rewrite for keys whose stored bytes are unchanged.
        self._spill_signatures: dict[ExtractKey, tuple[tuple[str, str], ...]] = {}

    def _make_executor(self, n_units: int | None) -> PartitionedExecutor:
        n_workers = self._n_workers
        backend = (
            ExecutionBackend(self._backend)
            if isinstance(self._backend, str)
            else self._backend
        )
        if n_workers is None and backend is not ExecutionBackend.SERIAL:
            # Unknown unit count (pool built before the first run) still
            # gets the CPU/cap bounds; a known count tightens it further.
            n_workers = recommended_fleet_workers(
                n_units if n_units is not None else MAX_FLEET_WORKERS
            )
        return PartitionedExecutor(backend, n_workers)

    @property
    def executor(self) -> PartitionedExecutor:
        if self._executor is None:
            self._executor = self._make_executor(None)
        return self._executor

    @property
    def config(self) -> PipelineConfig:
        return self._config

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the worker pool (if owned) and any spill directory."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()
        if self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
            self._spill_signatures.clear()

    def __enter__(self) -> "FleetOrchestrator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _spill_to_disk(self, units: list[ExtractKey]) -> str:
        """Materialise an in-memory lake's extracts as an on-disk lake.

        Byte-identical copies of every stored format are written (so unit
        fingerprints -- sha256 of stored bytes -- and the lake's
        damaged-``.sgx``-degrades-to-CSV behaviour are preserved), and
        stale spill copies of removed extracts are dropped.  Workers then
        re-open the spill directory like any disk lake: the coordinator
        never ships payload bytes through the executor, which is what
        keeps its RSS flat for very large fleets.

        Re-runs stay cheap: a key whose stored bytes are unchanged since
        it was last spilled (hashing the in-memory bytes is CPU-only) is
        not rewritten to disk, so a fully warm run spills nothing.
        """
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="seagull-spill-")
        spill = DataLakeStore(self._spill_dir)
        for key in units:
            formats = self._lake.extract_formats(key, principal=self._principal)
            payloads: list[tuple[str, bytes]] = [
                (
                    fmt,
                    self._lake.read_extract_bytes(key, principal=self._principal, fmt=fmt)[1],
                )
                for fmt in formats
            ]
            signature = tuple(
                (fmt, hashlib.sha256(payload).hexdigest()) for fmt, payload in payloads
            )
            if self._spill_signatures.get(key) == signature:
                continue  # byte-identical since last spill: no disk rewrite
            spill.delete_extract(key)  # drop stale copies from earlier runs
            for fmt, payload in payloads:
                spill.write_extract_bytes(key, fmt, payload, keep_other_formats=True)
            self._spill_signatures[key] = signature
        return self._spill_dir

    def _task_for(
        self, key: ExtractKey, lake_root: str, generation: int
    ) -> _UnitTask:
        return _UnitTask(
            region=key.region,
            week=key.week,
            config=self._config,
            lake_root=lake_root,
            query=ExtractQuery.for_key(
                key, interval_minutes=self._config.interval_minutes
            ),
            cache_dir=self._cache_dir,
            generation=generation,
        )

    def run(self, units: list[ExtractKey] | None = None) -> FleetReport:
        """Process ``units`` (default: every extract in the lake).

        Units are sharded across the executor as ``(lake handle,
        ExtractQuery)`` tasks; the consolidated report covers successes,
        failures (missing/invalid extracts become failed outcomes plus
        incident entries, they never abort the fleet run), cache activity
        and scan/pushdown statistics.
        """
        started = time.perf_counter()
        # Enforced here for explicit unit lists too: disk workers reopen
        # the lake without the allow-list, so the coordinator is the gate.
        self._lake.check_access(self._principal)
        if units is None:
            units = self._lake.list_extracts(principal=self._principal)
        units = sorted(units)
        root = self._lake.root
        lake_root = str(root) if root is not None else self._spill_to_disk(units)
        # Pin the whole run to the lake's current committed generation:
        # every worker reads the same immutable snapshot, so a writer
        # publishing mid-run cannot make two units disagree about the
        # lake's contents.  (Spill lakes get their generation from the
        # spill directory's own manifest.)
        if root is not None:
            generation = self._lake.current_generation(principal=self._principal)
        else:
            generation = DataLakeStore(lake_root).current_generation()
        tasks = [self._task_for(key, lake_root, generation) for key in units]
        if self._executor is None:
            # Deferred so the owned pool can be sized by the fleet
            # heuristic for the actual unit count; later runs reuse it.
            self._executor = self._make_executor(len(tasks))
        outcomes = self._executor.map(_execute_unit, tasks)
        return FleetReport(
            outcomes=list(outcomes),
            backend=self._executor.backend.value,
            n_workers=self._executor.n_workers,
            wall_seconds=time.perf_counter() - started,
            lake_generation=generation,
        )
