"""Fleet-scale orchestration of Seagull pipeline runs.

The seed pipeline processes one region's weekly extract per call; in
production Seagull runs per region across the entire cloud fleet
(Section 2.1: "all regions of the entire cloud infrastructure").  The
orchestrator closes that gap: it shards ``(region, week)`` work units
across a shared :class:`~repro.parallel.executor.PartitionedExecutor`,
runs the full pipeline on each unit, and consolidates the per-unit
results into one :class:`~repro.fleet_ops.report.FleetReport`.

Two cache layers make re-runs cheap:

* a **unit-level outcome cache** keyed by the raw extract fingerprint --
  an unchanged extract skips ingestion, parsing and every pipeline stage;
* the pipeline's **stage-level artifact cache** (features, train/infer,
  evaluation) keyed by extract content hash -- a changed configuration
  reuses whichever stages its parameters do not touch.

Both layers live in per-unit files under ``cache_dir``, so process-pool
workers never contend on a shared cache file and warm re-runs work across
operating-system processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.config import PipelineConfig
from repro.core.incidents import IncidentManager
from repro.core.pipeline import SeagullPipeline
from repro.core.stage_cache import STAGE_UNIT_OUTCOME
from repro.fleet_ops.report import FleetReport, FleetUnitOutcome
from repro.parallel.executor import (
    MAX_FLEET_WORKERS,
    ExecutionBackend,
    PartitionedExecutor,
    recommended_fleet_workers,
)
from repro.storage.artifacts import ArtifactStore, artifact_key, content_digest
from repro.storage.columnar import ColumnarFormatError, frame_from_sgx_bytes
from repro.storage.csv_io import frame_from_csv_text
from repro.storage.datalake import DataLakeStore, ExtractKey, ExtractNotFoundError
from repro.timeseries.frame import LoadFrame


#: Config fields that change *how* a unit is computed, not *what* it
#: computes -- they must not invalidate cached outcomes.
_EXECUTION_ONLY_FIELDS = ("executor_backend", "n_workers")


def _unit_cache_params(config: PipelineConfig) -> dict[str, Any]:
    """Configuration fingerprint for the whole-unit outcome cache."""
    params = config.as_dict()
    for field_name in _EXECUTION_ONLY_FIELDS:
        params.pop(field_name, None)
    return params


def unit_cache_path(cache_dir: str | Path, region: str, week: int) -> Path:
    """Cache file for one ``(region, week)`` unit (one file per unit, so
    parallel workers never write the same file)."""
    return Path(cache_dir) / f"unit_{region}_week{week:04d}.json"


@dataclass(frozen=True)
class _UnitTask:
    """Everything a (possibly out-of-process) worker needs for one unit.

    In-memory lakes ship the extract's raw stored bytes (CSV text or
    ``.sgx`` columnar) plus their format -- and, when a CSV copy co-exists
    with a preferred ``.sgx`` one, the CSV bytes too, so workers keep the
    lake's damaged-``.sgx``-degrades-to-CSV behaviour.  Disk lakes ship
    only the root and let the worker's own :class:`DataLakeStore`
    negotiate the format.
    """

    region: str
    week: int
    config: PipelineConfig
    lake_root: str | None = None
    payload: bytes | None = None
    payload_format: str = "csv"
    fallback_csv: bytes | None = None
    cache_dir: str | None = None
    interval_minutes: int = 5


def _parse_payload(task: _UnitTask) -> LoadFrame:
    assert task.payload is not None
    if task.payload_format == "sgx":
        try:
            return frame_from_sgx_bytes(task.payload, task.interval_minutes)
        except ColumnarFormatError:
            if task.fallback_csv is None:
                raise
            return frame_from_csv_text(
                task.fallback_csv.decode("utf-8"), task.interval_minutes
            )
    return frame_from_csv_text(task.payload.decode("utf-8"), task.interval_minutes)


def _failed_outcome(task: _UnitTask, reason: str, wall: float) -> FleetUnitOutcome:
    return FleetUnitOutcome(
        region=task.region,
        week=task.week,
        run_id="",
        succeeded=False,
        abort_reason=reason,
        timings={},
        summary=None,
        n_servers=0,
        n_predictions=0,
        n_predictable=0,
        incidents=[
            {
                "severity": "critical",
                "source": "data_ingestion",
                "message": reason,
                "region": task.region,
            }
        ],
        cache_events={},
        wall_seconds=wall,
    )


def _execute_unit(task: _UnitTask) -> FleetUnitOutcome:
    """Run the pipeline for one ``(region, week)`` unit.

    Module-level so the process-pool backend can pickle it.  The unit's
    artifact cache is opened from ``task.cache_dir`` inside the worker --
    cache objects never cross process boundaries.
    """
    started = time.perf_counter()
    key = ExtractKey(region=task.region, week=task.week)
    lake = DataLakeStore(task.lake_root) if task.lake_root is not None else None

    # Fingerprint the raw extract bytes (no parsing yet).  The digest
    # covers the stored representation, so converting a lake to .sgx
    # refreshes unit fingerprints while stage-cache keys (frame content
    # hashes) stay valid.
    try:
        if lake is not None:
            fingerprint = lake.extract_fingerprint(key)
        elif task.payload is not None:
            fingerprint = content_digest(task.payload)
        else:
            raise ExtractNotFoundError(f"no extract for {key}")
    except ExtractNotFoundError:
        return _failed_outcome(
            task,
            f"missing input extract for {task.region} week {task.week}",
            time.perf_counter() - started,
        )

    cache: ArtifactStore | None = None
    unit_key = ""
    if task.cache_dir is not None:
        cache = ArtifactStore.at(unit_cache_path(task.cache_dir, task.region, task.week))
        unit_key = artifact_key(STAGE_UNIT_OUTCOME, fingerprint, _unit_cache_params(task.config))
        payload = cache.get(unit_key)
        if payload is not None:
            try:
                outcome = FleetUnitOutcome.from_payload(payload)
            except Exception:
                outcome = None
            if outcome is not None:
                return outcome.as_cache_hit(time.perf_counter() - started)

    # Ingest (unit-cache miss or caching disabled).
    ingest_started = time.perf_counter()
    try:
        if lake is not None:
            frame = lake.read_extract(key, task.interval_minutes)
        else:
            frame = _parse_payload(task)
    except (ExtractNotFoundError, ValueError) as exc:
        return _failed_outcome(task, f"unreadable extract for {key}: {exc}", time.perf_counter() - started)
    ingest_seconds = time.perf_counter() - ingest_started

    incidents = IncidentManager()
    pipeline = SeagullPipeline(
        task.config,
        incident_manager=incidents,
        artifact_cache=cache,
    )
    result = pipeline.run(frame, region=task.region, week=task.week)
    # run() only counts a manifest check for pre-loaded frames; charge the
    # real parse cost to data_ingestion so fleet runtimes stay honest.
    result.timings["data_ingestion"] = ingest_seconds

    # Predictions flow through the unit's serving layer; roll its health
    # (version routing, request/cache counters) into the fleet report.
    serving = (
        pipeline.serving.health(task.region) if result.model_record is not None else {}
    )

    outcome = FleetUnitOutcome(
        region=task.region,
        week=task.week,
        run_id=result.run_id,
        succeeded=result.succeeded,
        abort_reason=result.abort_reason,
        timings=dict(result.timings),
        summary=result.summary.as_dict() if result.summary is not None else None,
        n_servers=len(frame),
        n_predictions=len(result.predictions),
        n_predictable=sum(1 for v in result.predictability.values() if v.predictable),
        incidents=[incident.as_dict() for incident in incidents.incidents()],
        cache_events=dict(result.cache_events),
        wall_seconds=time.perf_counter() - started,
        serving=serving,
    )
    if cache is not None and result.succeeded:
        cache.put(unit_key, outcome.to_payload())
    return outcome


class FleetOrchestrator:
    """Runs the Seagull pipeline over many ``(region, week)`` extracts.

    Parameters
    ----------
    lake:
        Extract store holding the fleet's weekly extracts.  Disk-backed
        lakes work with every backend; in-memory lakes ship each extract's
        raw stored bytes -- CSV or columnar ``.sgx``, plus CSV fallback
        bytes when both exist -- to the workers (fine for tests, wasteful
        at scale).
    config:
        Pipeline configuration applied to every unit.
    backend / n_workers / executor:
        How units are sharded.  Passing an ``executor`` shares one worker
        pool across successive :meth:`run` calls; otherwise the
        orchestrator creates (and owns) one from ``backend``/``n_workers``
        at the first :meth:`run`, defaulting ``n_workers`` to
        :func:`~repro.parallel.executor.recommended_fleet_workers` for the
        unit count being sharded.
    cache_dir:
        Directory for per-unit artifact caches.  ``None`` disables
        caching.
    principal:
        Principal presented to the lake's access checks (required for
        lakes constructed with ``granted_principals``).  Out-of-process
        workers reopen disk lakes from the root path without the
        allow-list, so enforcement happens here at the coordinator.
    """

    def __init__(
        self,
        lake: DataLakeStore,
        config: PipelineConfig | None = None,
        backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
        n_workers: int | None = None,
        executor: PartitionedExecutor | None = None,
        cache_dir: str | Path | None = None,
        principal: str | None = None,
    ) -> None:
        self._lake = lake
        self._principal = principal
        self._config = config if config is not None else PipelineConfig()
        self._backend = backend
        self._n_workers = n_workers
        self._executor = executor
        self._owns_executor = executor is None
        self._cache_dir = str(cache_dir) if cache_dir is not None else None
        if self._cache_dir is not None:
            Path(self._cache_dir).mkdir(parents=True, exist_ok=True)

    def _make_executor(self, n_units: int | None) -> PartitionedExecutor:
        n_workers = self._n_workers
        backend = (
            ExecutionBackend(self._backend)
            if isinstance(self._backend, str)
            else self._backend
        )
        if n_workers is None and backend is not ExecutionBackend.SERIAL:
            # Unknown unit count (pool built before the first run) still
            # gets the CPU/cap bounds; a known count tightens it further.
            n_workers = recommended_fleet_workers(
                n_units if n_units is not None else MAX_FLEET_WORKERS
            )
        return PartitionedExecutor(backend, n_workers)

    @property
    def executor(self) -> PartitionedExecutor:
        if self._executor is None:
            self._executor = self._make_executor(None)
        return self._executor

    @property
    def config(self) -> PipelineConfig:
        return self._config

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the worker pool if this orchestrator created it."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "FleetOrchestrator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _task_for(self, key: ExtractKey) -> _UnitTask:
        root = self._lake.root
        payload: bytes | None = None
        payload_format = "csv"
        fallback_csv: bytes | None = None
        if root is None:
            try:
                payload_format, payload = self._lake.read_extract_bytes(
                    key, principal=self._principal
                )
                if payload_format == "sgx" and "csv" in self._lake.extract_formats(
                    key, principal=self._principal
                ):
                    _, fallback_csv = self._lake.read_extract_bytes(
                        key, principal=self._principal, fmt="csv"
                    )
            except ExtractNotFoundError:
                payload = None
        return _UnitTask(
            region=key.region,
            week=key.week,
            config=self._config,
            lake_root=str(root) if root is not None else None,
            payload=payload,
            payload_format=payload_format,
            fallback_csv=fallback_csv,
            cache_dir=self._cache_dir,
            interval_minutes=self._config.interval_minutes,
        )

    def run(self, units: list[ExtractKey] | None = None) -> FleetReport:
        """Process ``units`` (default: every extract in the lake).

        Units are sharded across the executor; the consolidated report
        covers successes, failures (missing/invalid extracts become failed
        outcomes plus incident entries, they never abort the fleet run)
        and cache activity.
        """
        started = time.perf_counter()
        # Enforced here for explicit unit lists too: disk workers reopen
        # the lake without the allow-list, so the coordinator is the gate.
        self._lake.check_access(self._principal)
        if units is None:
            units = self._lake.list_extracts(principal=self._principal)
        tasks = [self._task_for(key) for key in sorted(units)]
        if self._executor is None:
            # Deferred so the owned pool can be sized by the fleet
            # heuristic for the actual unit count; later runs reuse it.
            self._executor = self._make_executor(len(tasks))
        outcomes = self._executor.map(_execute_unit, tasks)
        return FleetReport(
            outcomes=list(outcomes),
            backend=self._executor.backend.value,
            n_workers=self._executor.n_workers,
            wall_seconds=time.perf_counter() - started,
        )
