"""Synthetic multi-region lake population for fleet runs.

Production Seagull consumes the extracts the load-extraction query writes
per region and week; tests, benchmarks and the CLI need the same lake
layout filled with synthetic telemetry.  :func:`populate_lake` writes one
deterministic extract per ``(region, week)`` of a fleet spec.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.telemetry.fleet import FleetSpec
from repro.telemetry.generator import WorkloadGenerator

#: Manifest file recording which spec a disk lake's extracts came from.
SPEC_MANIFEST_NAME = "_fleet_spec.json"


def _spec_manifest(spec: FleetSpec) -> dict[str, object]:
    """The spec fields that determine extract content."""
    return {
        "seed": spec.seed,
        "weeks": spec.weeks,
        "interval_minutes": spec.interval_minutes,
        "regions": [[region.name, region.n_servers] for region in spec.regions],
        "class_mix": {cls.value: fraction for cls, fraction in spec.class_mix.items()},
        "engine_mix": dict(spec.engine_mix),
        "capacity_reaching_fraction": spec.capacity_reaching_fraction,
        "busy_fraction": spec.busy_fraction,
    }


def populate_lake(
    lake: DataLakeStore,
    spec: FleetSpec,
    weeks: Iterable[int] | None = None,
    skip_existing: bool = True,
) -> list[ExtractKey]:
    """Write one weekly extract per ``(region, week)`` into ``lake``.

    ``weeks`` defaults to ``range(spec.weeks)``.  Extracts are written in
    the lake's ``write_format`` (CSV or columnar ``.sgx``); existing
    extracts are kept by default *in whatever format they are stored* --
    content is deterministic per key within one spec, so re-generating
    them would be wasted work, and migrating a lake between formats is
    ``python -m repro.fleet_ops convert``'s job, not the generator's.
    Pass ``skip_existing=False`` to overwrite.  Disk-backed lakes record the
    spec in a ``_fleet_spec.json`` manifest: when the spec changes (seed,
    region sizes, horizon, ...), existing extracts are stale and are
    regenerated instead of silently reused.  Returns every key now
    present for the spec.
    """
    if skip_existing and lake.root is not None:
        manifest_path = lake.root / SPEC_MANIFEST_NAME
        manifest = _spec_manifest(spec)
        stored: object = None
        if manifest_path.exists():
            try:
                stored = json.loads(manifest_path.read_text())
            except (ValueError, OSError):
                stored = None
        if stored != manifest:
            skip_existing = False
            manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))

    generator = WorkloadGenerator(spec)
    week_list = list(weeks) if weeks is not None else list(range(spec.weeks))
    keys: list[ExtractKey] = []
    for region in spec.regions:
        for week in week_list:
            key = ExtractKey(region=region.name, week=week)
            keys.append(key)
            if skip_existing and lake.has_extract(key):
                continue
            lake.write_extract(key, generator.generate_weekly_extract(region, week))
    return keys
