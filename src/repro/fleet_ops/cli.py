"""Command-line entry point: ``python -m repro.fleet_ops``.

Five commands:

* the default (no subcommand) generates (or reuses) a synthetic
  multi-region lake, runs the fleet orchestrator over every
  ``(region, week)`` extract, and prints the consolidated fleet report.
  ``--rerun`` runs the fleet twice to show the artifact cache at work
  (the second pass serves unchanged extracts from the unit-outcome
  cache);
* ``python -m repro.fleet_ops convert`` migrates an existing lake in
  place between the CSV and columnar ``.sgx`` extract formats and prints
  a rollup of extracts, rows and bytes converted;
* ``python -m repro.fleet_ops manifest`` inspects a lake's transactional
  manifest: committed generation, segment files, log records, and any
  crash leftovers recovery would clean up;
* ``python -m repro.fleet_ops gc`` physically reclaims segment files and
  generations no longer referenced by the current committed generation
  (deletes are logical until this runs);
* ``python -m repro.fleet_ops live`` simulates the streaming data plane:
  telemetry batches land in per-partition tail WALs, day-boundary seals
  commit manifest transactions, and drift verdicts on sealed windows
  retrain and promote serving models -- the full live loop in one process.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.fleet_ops.orchestrator import FleetOrchestrator
from repro.fleet_ops.synthesis import populate_lake
from repro.storage.datalake import EXTRACT_FORMATS, DataLakeStore, ExtractKey
from repro.storage.migrate import ConversionVerificationError, convert_lake
from repro.telemetry.fleet import default_fleet_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet_ops",
        description="Run the Seagull pipeline over a multi-region fleet of weekly extracts.",
    )
    parser.add_argument(
        "--servers",
        default="24,16,10",
        help="comma-separated servers per region (one region per entry)",
    )
    parser.add_argument("--weeks", type=int, default=2, help="weekly extracts per region")
    parser.add_argument(
        "--horizon-weeks",
        type=int,
        default=4,
        help="weeks of telemetry inside each extract (the pipeline needs the "
        "training window plus history_weeks prior backup days)",
    )
    parser.add_argument("--seed", type=int, default=7, help="fleet generator seed")
    parser.add_argument(
        "--model",
        default="persistent_previous_day",
        help="forecaster to train per server",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "threads", "processes"),
        default="serial",
        help="how (region, week) units are sharded",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count (default: the fleet heuristic -- "
        "min(units, usable CPUs, cap))",
    )
    parser.add_argument(
        "--extract-format",
        choices=EXTRACT_FORMATS,
        default="sgx",
        help="format newly generated extracts are written in "
        "(.sgx is the columnar fast path; default: %(default)s)",
    )
    parser.add_argument(
        "--lake-dir",
        default=None,
        help="directory for the extract lake (default: a temporary directory)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for per-unit artifact caches (default: caching off)",
    )
    parser.add_argument(
        "--rerun",
        action="store_true",
        help="run the fleet twice to demonstrate warm-cache speedup",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    return parser


def build_convert_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet_ops convert",
        description="Convert a lake's extracts in place between CSV and columnar .sgx.",
    )
    parser.add_argument("--lake-dir", required=True, help="root directory of the lake")
    parser.add_argument(
        "--to",
        choices=EXTRACT_FORMATS,
        default="sgx",
        dest="to_format",
        help="target extract format (default: %(default)s)",
    )
    parser.add_argument("--region", default=None, help="convert only this region")
    parser.add_argument(
        "--chunk-minutes",
        type=int,
        default=None,
        dest="chunk_minutes",
        help="chunking policy for .sgx targets: split each server's series at "
        "absolute multiples of this many minutes (0 = one whole-series chunk; "
        "default: the columnar layer's per-day policy). Passing it explicitly "
        "also re-chunks extracts that are already .sgx v2",
    )
    parser.add_argument(
        "--delete-source",
        action="store_true",
        help="remove the source-format copy after (verified) conversion",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the lossless round-trip verification of each converted extract",
    )
    parser.add_argument("--json", action="store_true", help="emit the rollup as JSON")
    return parser


def convert_main(argv: list[str]) -> int:
    args = build_convert_parser().parse_args(argv)
    if not Path(args.lake_dir).is_dir():
        # DataLakeStore would mkdir the path; a typo'd --lake-dir must not
        # turn into a silent "0 extract(s) converted" success.
        print(f"--lake-dir {args.lake_dir!r} does not exist", file=sys.stderr)
        return 2
    if args.region is not None and not (Path(args.lake_dir) / args.region).is_dir():
        # Same guard for a typo'd region name.
        print(
            f"--region {args.region!r} has no partition under {args.lake_dir!r}",
            file=sys.stderr,
        )
        return 2
    if args.chunk_minutes is not None and args.chunk_minutes < 0:
        print("--chunk-minutes must be non-negative", file=sys.stderr)
        return 2
    lake = DataLakeStore(args.lake_dir)
    try:
        report = convert_lake(
            lake,
            to_format=args.to_format,
            region=args.region,
            delete_source=args.delete_source,
            verify=not args.no_verify,
            chunk_minutes=args.chunk_minutes,
        )
    except (ConversionVerificationError, ValueError) as exc:
        # ValueError covers unreadable extracts (ColumnarFormatError,
        # CsvSchemaError): abort with the documented exit code, not a
        # traceback.
        print(f"conversion aborted: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0


def build_manifest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet_ops manifest",
        description="Inspect a lake's transactional manifest: committed "
        "generation, segment files and transaction log.",
    )
    parser.add_argument("--lake-dir", required=True, help="root directory of the lake")
    parser.add_argument("--json", action="store_true", help="emit the state as JSON")
    return parser


def manifest_main(argv: list[str]) -> int:
    from repro.storage.manifest import LakeManifest, LakeManifestError

    args = build_manifest_parser().parse_args(argv)
    if not Path(args.lake_dir).is_dir():
        print(f"--lake-dir {args.lake_dir!r} does not exist", file=sys.stderr)
        return 2
    manifest = LakeManifest(Path(args.lake_dir))
    try:
        snapshot = manifest.current()
    except LakeManifestError as exc:
        print(f"manifest unreadable: {exc}", file=sys.stderr)
        return 1
    records = manifest.log.records()
    pending = manifest.log.pending()
    if args.json:
        payload = {
            "root": str(manifest.root),
            "adopted": manifest.exists(),
            "snapshot": snapshot.as_dict(),
            "log_records": len(records),
            "pending_txid": pending.txid if pending is not None else None,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"Lake manifest: {manifest.root}")
    if manifest.exists():
        txid = snapshot.txid if snapshot.txid is not None else "-"
        print(f"Committed generation: {snapshot.generation} (txid {txid})")
    else:
        print(
            "Committed generation: 0 (legacy lake, inferred from directory "
            "layout; the first mutation adopts it into a manifest)"
        )
    total = sum(entry.size for entry in snapshot.segments)
    print(f"Segments: {len(snapshot.segments)} ({total} bytes)")
    for entry in snapshot.segments:
        sha = entry.sha256[:12] if entry.sha256 is not None else "legacy"
        print(
            f"  {entry.region} week {entry.week}: .{entry.fmt} "
            f"{entry.size} bytes [{sha}] {entry.relpath}"
        )
    suffix = (
        f"pending transaction {pending.txid} (unresolved until recovery)"
        if pending is not None
        else "no pending transaction"
    )
    print(f"Transaction log: {len(records)} record(s), {suffix}")
    return 0


def build_gc_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet_ops gc",
        description="Physically reclaim lake files no longer referenced by "
        "the current committed generation (deletes are logical until this "
        "runs). Invalidates readers pinned to older generations.",
    )
    parser.add_argument("--lake-dir", required=True, help="root directory of the lake")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    return parser


def gc_main(argv: list[str]) -> int:
    from repro.storage.manifest import LakeManifest, LakeManifestError

    args = build_gc_parser().parse_args(argv)
    if not Path(args.lake_dir).is_dir():
        print(f"--lake-dir {args.lake_dir!r} does not exist", file=sys.stderr)
        return 2
    manifest = LakeManifest(Path(args.lake_dir))
    try:
        report = manifest.collect_garbage()
        generation = manifest.current().generation
    except LakeManifestError as exc:
        print(f"gc aborted: {exc}", file=sys.stderr)
        return 1
    if args.json:
        payload = dict(report.as_dict())
        payload["generation"] = generation
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"Lake gc at generation {generation}: "
        f"{report.segments_removed} segment file(s), "
        f"{report.generations_removed} old generation snapshot(s) and "
        f"{report.tmp_removed} temp file(s) removed, "
        f"{report.bytes_freed} bytes freed"
    )
    return 0


def build_live_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet_ops live",
        description="Simulate the live data plane: stream synthetic telemetry "
        "batches into tail WALs, seal them into the lake at day boundaries, "
        "and let window drift retrain and promote serving models.",
    )
    parser.add_argument(
        "--lake-dir",
        default=None,
        help="directory for the lake (default: a temporary directory)",
    )
    parser.add_argument("--region", default="region-live", help="region to ingest into")
    parser.add_argument("--servers", type=int, default=4, help="servers in the region")
    parser.add_argument("--days", type=int, default=4, help="days of telemetry to stream")
    parser.add_argument(
        "--batch-minutes",
        type=int,
        default=60,
        help="minutes of raw (1-minute) samples per ingested batch",
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=None,
        dest="interval_minutes",
        help="extract grid sealed segments are bucketed onto "
        "(default: the canonical 5-minute grid)",
    )
    parser.add_argument("--seed", type=int, default=7, help="telemetry generator seed")
    parser.add_argument(
        "--model",
        default="persistent_previous_day",
        help="forecaster the serving bridge (re)trains",
    )
    parser.add_argument(
        "--drift-day",
        type=int,
        default=2,
        help="day index from which the load pattern shifts (provokes a "
        "drift verdict and a retrain; pass a value >= --days for none)",
    )
    parser.add_argument(
        "--drift-factor",
        type=float,
        default=3.0,
        help="multiplier applied to the load from --drift-day on",
    )
    parser.add_argument(
        "--fsync-every",
        type=int,
        default=16,
        help="ingested batches between WAL fsyncs (1 = every batch durable)",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    return parser


def live_main(argv: list[str]) -> int:
    import numpy as np

    from repro.serving import LiveServingBridge, PredictionService
    from repro.storage.live import LiveIngestError, LiveIngestor
    from repro.storage.manifest import LakeManifestError
    from repro.timeseries.calendar import (
        DEFAULT_INTERVAL_MINUTES,
        MINUTES_PER_DAY,
        week_index,
    )
    from repro.timeseries.frame import ServerMetadata

    args = build_live_parser().parse_args(argv)
    interval = (
        args.interval_minutes
        if args.interval_minutes is not None
        else DEFAULT_INTERVAL_MINUTES
    )
    if args.servers < 1 or args.days < 1:
        print("--servers and --days must be at least 1", file=sys.stderr)
        return 2
    if args.batch_minutes < 1 or args.batch_minutes > MINUTES_PER_DAY:
        print("--batch-minutes must be between 1 and a day", file=sys.stderr)
        return 2
    if interval < 1 or MINUTES_PER_DAY % interval != 0:
        print("--interval must divide a day (seals land on day boundaries)", file=sys.stderr)
        return 2
    if args.drift_factor <= 0:
        print("--drift-factor must be positive", file=sys.stderr)
        return 2
    if args.fsync_every < 1:
        print("--fsync-every must be at least 1", file=sys.stderr)
        return 2

    lake_dir = args.lake_dir
    temp_holder: tempfile.TemporaryDirectory[str] | None = None
    if lake_dir is None:
        temp_holder = tempfile.TemporaryDirectory(prefix="seagull-live-")
        lake_dir = temp_holder.name

    rng = np.random.default_rng(args.seed)
    metadata = [
        ServerMetadata(server_id=f"srv-{i:03d}", region=args.region)
        for i in range(args.servers)
    ]
    days: list[dict[str, object]] = []
    try:
        store = DataLakeStore(lake_dir)
        service = PredictionService()
        bridge = LiveServingBridge(store, service, model_name=args.model)
        with LiveIngestor(
            store,
            interval_minutes=interval,
            chunk_minutes=MINUTES_PER_DAY,
            fsync_every=args.fsync_every,
        ) as ingestor:
            for day in range(args.days):
                day_start = day * MINUTES_PER_DAY
                key = ExtractKey(region=args.region, week=week_index(day_start))
                factor = args.drift_factor if day >= args.drift_day else 1.0
                rows = batches = 0
                for offset in range(0, MINUTES_PER_DAY, args.batch_minutes):
                    span = min(args.batch_minutes, MINUTES_PER_DAY - offset)
                    ts = np.arange(day_start + offset, day_start + offset + span)
                    minute_of_day = (ts % MINUTES_PER_DAY).astype(np.float64)
                    diurnal = 50.0 + 25.0 * np.sin(
                        2.0 * np.pi * minute_of_day / MINUTES_PER_DAY
                    )
                    for meta in metadata:
                        load = factor * diurnal + rng.normal(0.0, 2.0, size=ts.size)
                        rows += ingestor.ingest(key, meta, ts, np.maximum(load, 0.0))
                        batches += 1
                entry: dict[str, object] = {
                    "day": day,
                    "rows_ingested": rows,
                    "batches": batches,
                    "seals": [],
                }
                for report in ingestor.seal_due(day_start + MINUTES_PER_DAY):
                    event = bridge.on_sealed(report)
                    entry["seals"].append(  # type: ignore[union-attr]
                        {
                            "region": report.region,
                            "week": report.week,
                            "sealed_through": report.sealed_through,
                            "rows_sealed": report.rows_sealed,
                            "generation": report.generation,
                            "tail_rows_remaining": report.tail_rows_remaining,
                            "mean_load": event.summary.mean_load,
                            "drifted": event.verdict.drifted
                            if event.verdict is not None
                            else None,
                            "action": event.action,
                            "active_version": event.active_version,
                        }
                    )
                days.append(entry)
            pending = ingestor.pending_rows()
        manifest = store.manifest
        generation = manifest.current().generation if manifest is not None else 0
        health = service.health(args.region)
    except (LiveIngestError, LakeManifestError, PermissionError) as exc:
        print(f"live simulation aborted: {exc}", file=sys.stderr)
        return 1
    finally:
        if temp_holder is not None:
            temp_holder.cleanup()

    if args.json:
        payload = {
            "lake_dir": None if temp_holder is not None else lake_dir,
            "region": args.region,
            "interval_minutes": interval,
            "days": days,
            "generation": generation,
            "tail_rows_pending": pending,
            "health": health,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(
        f"Live ingestion: region {args.region!r}, {args.servers} server(s), "
        f"{args.days} day(s), {interval}-minute grid"
    )
    for entry in days:
        print(
            f"  day {entry['day']}: {entry['rows_ingested']} raw row(s) "
            f"in {entry['batches']} batch(es)"
        )
        for seal in entry["seals"]:  # type: ignore[union-attr]
            drift = (
                "baseline"
                if seal["drifted"] is None
                else ("drifted" if seal["drifted"] else "stable")
            )
            promoted = (
                f" -> version {seal['active_version']}"
                if seal["action"] in ("bootstrap", "retrain")
                else ""
            )
            print(
                f"    seal week {seal['week']} through {seal['sealed_through']}: "
                f"{seal['rows_sealed']} grid row(s), generation {seal['generation']}, "
                f"mean load {seal['mean_load']:.1f}, {drift}, "
                f"action {seal['action']}{promoted}"
            )
    print(
        f"Committed generation {generation}; "
        f"{pending} raw row(s) left in the tail"
    )
    print(
        f"Serving health: active version {health['active_version']} "
        f"({health['active_model']}), {health['n_versions']} version(s) deployed"
    )
    return 0


def run_main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        servers = tuple(int(part) for part in args.servers.split(",") if part.strip())
    except ValueError:
        print(f"invalid --servers value: {args.servers!r}", file=sys.stderr)
        return 2
    if not servers or any(count <= 0 for count in servers):
        print("--servers needs positive integers", file=sys.stderr)
        return 2
    if args.weeks < 1:
        print("--weeks must be at least 1", file=sys.stderr)
        return 2
    if args.rerun and args.cache_dir is None:
        print("--rerun without --cache-dir would just repeat the work", file=sys.stderr)
        return 2

    spec = default_fleet_spec(
        servers_per_region=servers, weeks=args.horizon_weeks, seed=args.seed
    )
    config = PipelineConfig(model_name=args.model)

    lake_dir = args.lake_dir
    temp_holder: tempfile.TemporaryDirectory[str] | None = None
    if lake_dir is None:
        temp_holder = tempfile.TemporaryDirectory(prefix="seagull-lake-")
        lake_dir = temp_holder.name
    try:
        lake = DataLakeStore(lake_dir, write_format=args.extract_format)
        keys = populate_lake(lake, spec, weeks=range(args.weeks))
        with FleetOrchestrator(
            lake,
            config=config,
            backend=args.backend,
            n_workers=args.workers,
            cache_dir=args.cache_dir,
        ) as orchestrator:
            report = orchestrator.run(keys)
            rerun_report = orchestrator.run(keys) if args.rerun else None

        if args.json:
            payload = {"run": report.as_dict()}
            if rerun_report is not None:
                payload["rerun"] = rerun_report.as_dict()
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(report.render_text())
            if rerun_report is not None:
                print()
                print("=== warm re-run ===")
                print(rerun_report.render_text())
                if rerun_report.wall_seconds > 0:
                    speedup = report.wall_seconds / rerun_report.wall_seconds
                    print(f"Warm-cache speedup: {speedup:.1f}x")
        return 0 if report.n_failed == 0 else 1
    finally:
        if temp_holder is not None:
            temp_holder.cleanup()


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "convert":
        return convert_main(argv[1:])
    if argv and argv[0] == "manifest":
        return manifest_main(argv[1:])
    if argv and argv[0] == "gc":
        return gc_main(argv[1:])
    if argv and argv[0] == "live":
        return live_main(argv[1:])
    return run_main(argv)
