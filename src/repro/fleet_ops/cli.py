"""Command-line entry point: ``python -m repro.fleet_ops``.

Generates (or reuses) a synthetic multi-region lake, runs the fleet
orchestrator over every ``(region, week)`` extract, and prints the
consolidated fleet report.  ``--rerun`` runs the fleet twice to show the
artifact cache at work (the second pass serves unchanged extracts from
the unit-outcome cache).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from repro.core.config import PipelineConfig
from repro.fleet_ops.orchestrator import FleetOrchestrator
from repro.fleet_ops.synthesis import populate_lake
from repro.storage.datalake import DataLakeStore
from repro.telemetry.fleet import default_fleet_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet_ops",
        description="Run the Seagull pipeline over a multi-region fleet of weekly extracts.",
    )
    parser.add_argument(
        "--servers",
        default="24,16,10",
        help="comma-separated servers per region (one region per entry)",
    )
    parser.add_argument("--weeks", type=int, default=2, help="weekly extracts per region")
    parser.add_argument(
        "--horizon-weeks",
        type=int,
        default=4,
        help="weeks of telemetry inside each extract (the pipeline needs the "
        "training window plus history_weeks prior backup days)",
    )
    parser.add_argument("--seed", type=int, default=7, help="fleet generator seed")
    parser.add_argument(
        "--model",
        default="persistent_previous_day",
        help="forecaster to train per server",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "threads", "processes"),
        default="serial",
        help="how (region, week) units are sharded",
    )
    parser.add_argument("--workers", type=int, default=None, help="worker count")
    parser.add_argument(
        "--lake-dir",
        default=None,
        help="directory for the extract lake (default: a temporary directory)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for per-unit artifact caches (default: caching off)",
    )
    parser.add_argument(
        "--rerun",
        action="store_true",
        help="run the fleet twice to demonstrate warm-cache speedup",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        servers = tuple(int(part) for part in args.servers.split(",") if part.strip())
    except ValueError:
        print(f"invalid --servers value: {args.servers!r}", file=sys.stderr)
        return 2
    if not servers or any(count <= 0 for count in servers):
        print("--servers needs positive integers", file=sys.stderr)
        return 2
    if args.weeks < 1:
        print("--weeks must be at least 1", file=sys.stderr)
        return 2
    if args.rerun and args.cache_dir is None:
        print("--rerun without --cache-dir would just repeat the work", file=sys.stderr)
        return 2

    spec = default_fleet_spec(
        servers_per_region=servers, weeks=args.horizon_weeks, seed=args.seed
    )
    config = PipelineConfig(model_name=args.model)

    lake_dir = args.lake_dir
    temp_holder: tempfile.TemporaryDirectory[str] | None = None
    if lake_dir is None:
        temp_holder = tempfile.TemporaryDirectory(prefix="seagull-lake-")
        lake_dir = temp_holder.name
    try:
        lake = DataLakeStore(lake_dir)
        keys = populate_lake(lake, spec, weeks=range(args.weeks))
        with FleetOrchestrator(
            lake,
            config=config,
            backend=args.backend,
            n_workers=args.workers,
            cache_dir=args.cache_dir,
        ) as orchestrator:
            report = orchestrator.run(keys)
            rerun_report = orchestrator.run(keys) if args.rerun else None

        if args.json:
            payload = {"run": report.as_dict()}
            if rerun_report is not None:
                payload["rerun"] = rerun_report.as_dict()
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(report.render_text())
            if rerun_report is not None:
                print()
                print("=== warm re-run ===")
                print(rerun_report.render_text())
                if rerun_report.wall_seconds > 0:
                    speedup = report.wall_seconds / rerun_report.wall_seconds
                    print(f"Warm-cache speedup: {speedup:.1f}x")
        return 0 if report.n_failed == 0 else 1
    finally:
        if temp_holder is not None:
            temp_holder.cleanup()
