"""Command-line entry point: ``python -m repro.fleet_ops``.

Two commands:

* the default (no subcommand) generates (or reuses) a synthetic
  multi-region lake, runs the fleet orchestrator over every
  ``(region, week)`` extract, and prints the consolidated fleet report.
  ``--rerun`` runs the fleet twice to show the artifact cache at work
  (the second pass serves unchanged extracts from the unit-outcome
  cache);
* ``python -m repro.fleet_ops convert`` migrates an existing lake in
  place between the CSV and columnar ``.sgx`` extract formats and prints
  a rollup of extracts, rows and bytes converted.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.fleet_ops.orchestrator import FleetOrchestrator
from repro.fleet_ops.synthesis import populate_lake
from repro.storage.datalake import EXTRACT_FORMATS, DataLakeStore
from repro.storage.migrate import ConversionVerificationError, convert_lake
from repro.telemetry.fleet import default_fleet_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet_ops",
        description="Run the Seagull pipeline over a multi-region fleet of weekly extracts.",
    )
    parser.add_argument(
        "--servers",
        default="24,16,10",
        help="comma-separated servers per region (one region per entry)",
    )
    parser.add_argument("--weeks", type=int, default=2, help="weekly extracts per region")
    parser.add_argument(
        "--horizon-weeks",
        type=int,
        default=4,
        help="weeks of telemetry inside each extract (the pipeline needs the "
        "training window plus history_weeks prior backup days)",
    )
    parser.add_argument("--seed", type=int, default=7, help="fleet generator seed")
    parser.add_argument(
        "--model",
        default="persistent_previous_day",
        help="forecaster to train per server",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "threads", "processes"),
        default="serial",
        help="how (region, week) units are sharded",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count (default: the fleet heuristic -- "
        "min(units, usable CPUs, cap))",
    )
    parser.add_argument(
        "--extract-format",
        choices=EXTRACT_FORMATS,
        default="sgx",
        help="format newly generated extracts are written in "
        "(.sgx is the columnar fast path; default: %(default)s)",
    )
    parser.add_argument(
        "--lake-dir",
        default=None,
        help="directory for the extract lake (default: a temporary directory)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for per-unit artifact caches (default: caching off)",
    )
    parser.add_argument(
        "--rerun",
        action="store_true",
        help="run the fleet twice to demonstrate warm-cache speedup",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    return parser


def build_convert_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet_ops convert",
        description="Convert a lake's extracts in place between CSV and columnar .sgx.",
    )
    parser.add_argument("--lake-dir", required=True, help="root directory of the lake")
    parser.add_argument(
        "--to",
        choices=EXTRACT_FORMATS,
        default="sgx",
        dest="to_format",
        help="target extract format (default: %(default)s)",
    )
    parser.add_argument("--region", default=None, help="convert only this region")
    parser.add_argument(
        "--chunk-minutes",
        type=int,
        default=None,
        dest="chunk_minutes",
        help="chunking policy for .sgx targets: split each server's series at "
        "absolute multiples of this many minutes (0 = one whole-series chunk; "
        "default: the columnar layer's per-day policy). Passing it explicitly "
        "also re-chunks extracts that are already .sgx v2",
    )
    parser.add_argument(
        "--delete-source",
        action="store_true",
        help="remove the source-format copy after (verified) conversion",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the lossless round-trip verification of each converted extract",
    )
    parser.add_argument("--json", action="store_true", help="emit the rollup as JSON")
    return parser


def convert_main(argv: list[str]) -> int:
    args = build_convert_parser().parse_args(argv)
    if not Path(args.lake_dir).is_dir():
        # DataLakeStore would mkdir the path; a typo'd --lake-dir must not
        # turn into a silent "0 extract(s) converted" success.
        print(f"--lake-dir {args.lake_dir!r} does not exist", file=sys.stderr)
        return 2
    if args.region is not None and not (Path(args.lake_dir) / args.region).is_dir():
        # Same guard for a typo'd region name.
        print(
            f"--region {args.region!r} has no partition under {args.lake_dir!r}",
            file=sys.stderr,
        )
        return 2
    if args.chunk_minutes is not None and args.chunk_minutes < 0:
        print("--chunk-minutes must be non-negative", file=sys.stderr)
        return 2
    lake = DataLakeStore(args.lake_dir)
    try:
        report = convert_lake(
            lake,
            to_format=args.to_format,
            region=args.region,
            delete_source=args.delete_source,
            verify=not args.no_verify,
            chunk_minutes=args.chunk_minutes,
        )
    except (ConversionVerificationError, ValueError) as exc:
        # ValueError covers unreadable extracts (ColumnarFormatError,
        # CsvSchemaError): abort with the documented exit code, not a
        # traceback.
        print(f"conversion aborted: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0


def run_main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        servers = tuple(int(part) for part in args.servers.split(",") if part.strip())
    except ValueError:
        print(f"invalid --servers value: {args.servers!r}", file=sys.stderr)
        return 2
    if not servers or any(count <= 0 for count in servers):
        print("--servers needs positive integers", file=sys.stderr)
        return 2
    if args.weeks < 1:
        print("--weeks must be at least 1", file=sys.stderr)
        return 2
    if args.rerun and args.cache_dir is None:
        print("--rerun without --cache-dir would just repeat the work", file=sys.stderr)
        return 2

    spec = default_fleet_spec(
        servers_per_region=servers, weeks=args.horizon_weeks, seed=args.seed
    )
    config = PipelineConfig(model_name=args.model)

    lake_dir = args.lake_dir
    temp_holder: tempfile.TemporaryDirectory[str] | None = None
    if lake_dir is None:
        temp_holder = tempfile.TemporaryDirectory(prefix="seagull-lake-")
        lake_dir = temp_holder.name
    try:
        lake = DataLakeStore(lake_dir, write_format=args.extract_format)
        keys = populate_lake(lake, spec, weeks=range(args.weeks))
        with FleetOrchestrator(
            lake,
            config=config,
            backend=args.backend,
            n_workers=args.workers,
            cache_dir=args.cache_dir,
        ) as orchestrator:
            report = orchestrator.run(keys)
            rerun_report = orchestrator.run(keys) if args.rerun else None

        if args.json:
            payload = {"run": report.as_dict()}
            if rerun_report is not None:
                payload["rerun"] = rerun_report.as_dict()
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(report.render_text())
            if rerun_report is not None:
                print()
                print("=== warm re-run ===")
                print(rerun_report.render_text())
                if rerun_report.wall_seconds > 0:
                    speedup = report.wall_seconds / rerun_report.wall_seconds
                    print(f"Warm-cache speedup: {speedup:.1f}x")
        return 0 if report.n_failed == 0 else 1
    finally:
        if temp_holder is not None:
            temp_holder.cleanup()


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "convert":
        return convert_main(argv[1:])
    return run_main(argv)
