"""``python -m repro.fleet_ops`` dispatch."""

import sys

from repro.fleet_ops.cli import main

if __name__ == "__main__":
    sys.exit(main())
