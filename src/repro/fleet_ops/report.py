"""Consolidated fleet report: the multi-region analogue of Figures 12a/13.

One pipeline run reports component runtimes for one region-week (Figure
12(a)) and predictability for its servers (Figure 13's inputs).  The fleet
report rolls those up across every ``(region, week)`` unit the
orchestrator processed: per-region component runtimes, a fleet-wide
predictability verdict rollup, an incident rollup and artifact-cache
activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.pipeline import PIPELINE_COMPONENTS


@dataclass(frozen=True)
class FleetUnitOutcome:
    """Picklable, JSON-serializable result of one ``(region, week)`` unit."""

    region: str
    week: int
    run_id: str
    succeeded: bool
    abort_reason: str
    timings: dict[str, float]
    summary: dict[str, float] | None
    n_servers: int
    n_predictions: int
    n_predictable: int
    incidents: list[dict[str, Any]]
    cache_events: dict[str, str]
    wall_seconds: float
    #: Whether the whole unit was served from the outcome cache.
    from_unit_cache: bool = False
    #: Serving-health summary of the unit's prediction service (empty when
    #: nothing was deployed, e.g. on validation aborts).
    serving: dict[str, Any] = field(default_factory=dict)
    #: Scan statistics of the unit's ingestion query (chunks pruned,
    #: servers skipped, bytes CRC-verified vs stored); empty when the unit
    #: never ran a query (failed before ingestion).
    scan: dict[str, Any] = field(default_factory=dict)
    #: Load rollup of the unit's shard, answered through the aggregate
    #: query path (``.sgx`` v4 chunks fully inside the shard are reduced
    #: from chunk-table statistics, never decoded): rows, days covered,
    #: fleet-weighted mean and peak load, plus the decode-avoidance
    #: counters.  Empty when the unit failed before ingestion.
    load: dict[str, Any] = field(default_factory=dict)

    def as_cache_hit(self, wall_seconds: float) -> "FleetUnitOutcome":
        """This outcome as served from the unit cache on a later run.

        ``timings`` keep the original compute cost (useful for capacity
        reports); ``wall_seconds`` is what the warm run actually spent.
        """
        return FleetUnitOutcome(
            region=self.region,
            week=self.week,
            run_id=self.run_id,
            succeeded=self.succeeded,
            abort_reason=self.abort_reason,
            timings=dict(self.timings),
            summary=dict(self.summary) if self.summary is not None else None,
            n_servers=self.n_servers,
            n_predictions=self.n_predictions,
            n_predictable=self.n_predictable,
            incidents=list(self.incidents),
            cache_events={"unit_outcome": "hit"},
            wall_seconds=wall_seconds,
            from_unit_cache=True,
            serving=dict(self.serving),
            scan=dict(self.scan),
            load=dict(self.load),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "region": self.region,
            "week": self.week,
            "run_id": self.run_id,
            "succeeded": self.succeeded,
            "abort_reason": self.abort_reason,
            "timings": dict(self.timings),
            "summary": dict(self.summary) if self.summary is not None else None,
            "n_servers": self.n_servers,
            "n_predictions": self.n_predictions,
            "n_predictable": self.n_predictable,
            "incidents": list(self.incidents),
            "cache_events": dict(self.cache_events),
            "wall_seconds": self.wall_seconds,
            "serving": dict(self.serving),
            "scan": dict(self.scan),
            "load": dict(self.load),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FleetUnitOutcome":
        summary = payload["summary"]
        return cls(
            region=str(payload["region"]),
            week=int(payload["week"]),
            run_id=str(payload["run_id"]),
            succeeded=bool(payload["succeeded"]),
            abort_reason=str(payload["abort_reason"]),
            timings={k: float(v) for k, v in payload["timings"].items()},
            summary={k: float(v) for k, v in summary.items()} if summary is not None else None,
            n_servers=int(payload["n_servers"]),
            n_predictions=int(payload["n_predictions"]),
            n_predictable=int(payload["n_predictable"]),
            incidents=[dict(incident) for incident in payload["incidents"]],
            cache_events={k: str(v) for k, v in payload["cache_events"].items()},
            wall_seconds=float(payload["wall_seconds"]),
            serving=dict(payload.get("serving") or {}),
            scan=dict(payload.get("scan") or {}),
            load=dict(payload.get("load") or {}),
        )


@dataclass
class FleetReport:
    """Everything one orchestrator run produced, consolidated."""

    outcomes: list[FleetUnitOutcome]
    backend: str
    n_workers: int
    wall_seconds: float
    #: Committed lake manifest generation every worker was pinned to
    #: (``None`` on reports predating generation pinning).
    lake_generation: int | None = None
    _by_region: dict[str, list[FleetUnitOutcome]] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        for outcome in self.outcomes:
            self._by_region.setdefault(outcome.region, []).append(outcome)

    # ------------------------------------------------------------------ #
    # Totals
    # ------------------------------------------------------------------ #

    @property
    def n_units(self) -> int:
        return len(self.outcomes)

    @property
    def n_succeeded(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.succeeded)

    @property
    def n_failed(self) -> int:
        return self.n_units - self.n_succeeded

    def regions(self) -> list[str]:
        return sorted(self._by_region)

    # ------------------------------------------------------------------ #
    # Figure 12(a) analogue: per-region component runtimes
    # ------------------------------------------------------------------ #

    def per_region_component_seconds(self) -> dict[str, dict[str, float]]:
        """Summed component runtimes per region across its weekly units."""
        table: dict[str, dict[str, float]] = {}
        for region in self.regions():
            totals = dict.fromkeys(PIPELINE_COMPONENTS, 0.0)
            for outcome in self._by_region[region]:
                for component, seconds in outcome.timings.items():
                    totals[component] = totals.get(component, 0.0) + seconds
            table[region] = totals
        return table

    def per_region_summary(self) -> dict[str, dict[str, Any]]:
        """Per-region rollup: units, servers, predictability, runtime."""
        table: dict[str, dict[str, Any]] = {}
        for region in self.regions():
            outcomes = self._by_region[region]
            n_servers = sum(o.n_servers for o in outcomes)
            n_predictable = sum(o.n_predictable for o in outcomes)
            table[region] = {
                "units": len(outcomes),
                "succeeded": sum(1 for o in outcomes if o.succeeded),
                "n_servers": n_servers,
                "n_predictions": sum(o.n_predictions for o in outcomes),
                "n_predictable": n_predictable,
                "pct_predictable": 100.0 * n_predictable / n_servers if n_servers else 0.0,
                "compute_seconds": sum(sum(o.timings.values()) for o in outcomes),
                "wall_seconds": sum(o.wall_seconds for o in outcomes),
                "units_from_cache": sum(1 for o in outcomes if o.from_unit_cache),
            }
        return table

    # ------------------------------------------------------------------ #
    # Figure 13 analogue: fleet predictability rollup
    # ------------------------------------------------------------------ #

    def predictability_rollup(self) -> dict[str, float]:
        n_servers = sum(o.n_servers for o in self.outcomes)
        n_predictable = sum(o.n_predictable for o in self.outcomes)
        return {
            "n_servers": n_servers,
            "n_predictions": sum(o.n_predictions for o in self.outcomes),
            "n_predictable": n_predictable,
            "pct_predictable": 100.0 * n_predictable / n_servers if n_servers else 0.0,
        }

    # ------------------------------------------------------------------ #
    # Incidents and cache activity
    # ------------------------------------------------------------------ #

    def incident_rollup(self) -> dict[str, dict[str, int]]:
        """Incident counts by severity and by source across all units."""
        by_severity: dict[str, int] = {}
        by_source: dict[str, int] = {}
        for outcome in self.outcomes:
            for incident in outcome.incidents:
                severity = str(incident.get("severity", "unknown"))
                source = str(incident.get("source", "unknown"))
                by_severity[severity] = by_severity.get(severity, 0) + 1
                by_source[source] = by_source.get(source, 0) + 1
        return {"by_severity": by_severity, "by_source": by_source}

    def cache_summary(self) -> dict[str, int]:
        """Cache activity across units: unit-level and stage-level events."""
        summary = {"unit_hits": 0, "stage_hits": 0, "stage_misses": 0}
        for outcome in self.outcomes:
            if outcome.from_unit_cache:
                summary["unit_hits"] += 1
            for stage, event in outcome.cache_events.items():
                if stage == "unit_outcome":
                    continue
                if event == "hit":
                    summary["stage_hits"] += 1
                elif event == "miss":
                    summary["stage_misses"] += 1
        return summary

    def serving_rollup(self) -> dict[str, int]:
        """Prediction-serving activity across units.

        Aggregates each unit's :class:`~repro.serving.service.
        PredictionService` health summary: requests routed, predictions
        served, serving-cache hits, per-server failures and how many
        units' routing had flipped to a fallback version.
        """
        rollup = {
            "requests": 0,
            "served": 0,
            "cache_hits": 0,
            "failures": 0,
            "units_with_deployment": 0,
            "units_fell_back": 0,
        }
        for outcome in self.outcomes:
            serving = outcome.serving
            if not serving:
                continue
            rollup["units_with_deployment"] += 1
            if serving.get("fell_back"):
                rollup["units_fell_back"] += 1
            stats = serving.get("stats") or {}
            rollup["requests"] += int(stats.get("requests", 0))
            rollup["served"] += int(stats.get("served", 0))
            rollup["cache_hits"] += int(stats.get("cache_hits", 0))
            rollup["failures"] += int(stats.get("failures", 0))
        return rollup

    def scan_rollup(self) -> dict[str, Any]:
        """Extract-scan activity across units (the dual of
        :meth:`serving_rollup` for the read path).

        Aggregates each unit's ingestion-query :class:`~repro.storage.
        query.ScanStats`: extracts scanned, chunk/zone-map pruning,
        server and column skips, and payload bytes CRC-verified vs
        stored -- the fleet-level view of what pushdown saved.
        """
        rollup: dict[str, Any] = {
            "extracts_scanned": 0,
            "chunks_seen": 0,
            "chunks_pruned": 0,
            "servers_seen": 0,
            "servers_skipped": 0,
            "columns_skipped": 0,
            "payload_bytes_stored": 0,
            "payload_bytes_verified": 0,
            "rows": 0,
        }
        for outcome in self.outcomes:
            for counter in rollup:
                rollup[counter] += int(outcome.scan.get(counter, 0))
        stored = rollup["payload_bytes_stored"]
        rollup["verified_fraction"] = (
            rollup["payload_bytes_verified"] / stored if stored else 1.0
        )
        return rollup

    def load_rollup(self) -> dict[str, Any]:
        """Fleet-wide load summary, routed through the aggregate path.

        Each unit's ``load`` entry was answered by an aggregate
        :class:`~repro.storage.query.ExtractQuery` -- on ``.sgx`` v4
        lakes fully covered chunks are reduced from chunk-table
        statistics without their value buffers ever being decoded.  The
        fleet mean is sample-weighted (``sum(rows * mean) / sum(rows)``),
        the peak is the max of unit peaks, and the decode-avoidance
        counters say how many payload bytes the statistics path saved
        across the whole fleet.
        """
        rollup: dict[str, Any] = {
            "units_with_load": 0,
            "rows": 0,
            "days": 0,
            "mean_load": 0.0,
            "peak_load": 0.0,
            "chunks_answered_from_stats": 0,
            "bytes_decoded_avoided": 0,
            "payload_bytes_verified": 0,
        }
        weighted_sum = 0.0
        for outcome in self.outcomes:
            load = outcome.load
            if not load:
                continue
            rollup["units_with_load"] += 1
            rows = int(load.get("rows", 0))
            rollup["rows"] += rows
            rollup["days"] += int(load.get("days", 0))
            weighted_sum += rows * float(load.get("mean_load", 0.0))
            rollup["peak_load"] = max(rollup["peak_load"], float(load.get("peak_load", 0.0)))
            for counter in (
                "chunks_answered_from_stats",
                "bytes_decoded_avoided",
                "payload_bytes_verified",
            ):
                rollup[counter] += int(load.get(counter, 0))
        if rollup["rows"]:
            rollup["mean_load"] = weighted_sum / rollup["rows"]
        return rollup

    # ------------------------------------------------------------------ #
    # Serialization and rendering
    # ------------------------------------------------------------------ #

    def as_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "wall_seconds": self.wall_seconds,
            "lake_generation": self.lake_generation,
            "n_units": self.n_units,
            "n_succeeded": self.n_succeeded,
            "n_failed": self.n_failed,
            "per_region": self.per_region_summary(),
            "per_region_component_seconds": self.per_region_component_seconds(),
            "predictability": self.predictability_rollup(),
            "incidents": self.incident_rollup(),
            "cache": self.cache_summary(),
            "serving": self.serving_rollup(),
            "scan": self.scan_rollup(),
            "load": self.load_rollup(),
            "outcomes": [outcome.to_payload() for outcome in self.outcomes],
        }

    def render_text(self) -> str:
        """Human-readable fleet report (the CLI's default output)."""
        lines: list[str] = []
        lines.append(
            f"Fleet run: {self.n_units} units ({self.n_succeeded} ok, "
            f"{self.n_failed} failed) on backend={self.backend} "
            f"workers={self.n_workers} in {self.wall_seconds:.2f}s"
        )
        if self.lake_generation is not None:
            lines.append(f"Lake manifest generation: {self.lake_generation}")
        lines.append("")
        header = f"{'region':<14}{'units':>6}{'servers':>9}{'predictable':>13}{'compute s':>11}{'cached':>8}"
        lines.append(header)
        lines.append("-" * len(header))
        for region, row in self.per_region_summary().items():
            lines.append(
                f"{region:<14}{row['units']:>6}{row['n_servers']:>9}"
                f"{row['pct_predictable']:>12.1f}%{row['compute_seconds']:>11.2f}"
                f"{row['units_from_cache']:>8}"
            )
        rollup = self.predictability_rollup()
        lines.append("")
        lines.append(
            f"Fleet predictability: {rollup['n_predictable']}/{rollup['n_servers']} "
            f"servers ({rollup['pct_predictable']:.1f}%)"
        )
        incidents = self.incident_rollup()["by_severity"]
        if incidents:
            rendered = ", ".join(f"{sev}={count}" for sev, count in sorted(incidents.items()))
            lines.append(f"Incidents: {rendered}")
        else:
            lines.append("Incidents: none")
        cache = self.cache_summary()
        lines.append(
            f"Cache: {cache['unit_hits']} unit hits, {cache['stage_hits']} stage hits, "
            f"{cache['stage_misses']} stage misses"
        )
        serving = self.serving_rollup()
        lines.append(
            f"Serving: {serving['served']}/{serving['requests']} predictions served "
            f"({serving['cache_hits']} cache hits, {serving['failures']} failures, "
            f"{serving['units_fell_back']} units on fallback versions)"
        )
        scan = self.scan_rollup()
        lines.append(
            f"Scan: {scan['extracts_scanned']} extracts, {scan['rows']} rows, "
            f"{scan['chunks_pruned']}/{scan['chunks_seen']} chunks pruned, "
            f"{scan['servers_skipped']} servers skipped, "
            f"{scan['payload_bytes_verified']}/{scan['payload_bytes_stored']} "
            f"payload bytes CRC-verified "
            f"({100.0 * scan['verified_fraction']:.0f}%)"
        )
        load = self.load_rollup()
        if load["units_with_load"]:
            lines.append(
                f"Aggregate: {load['rows']} rows over {load['days']} server-days, "
                f"mean load {load['mean_load']:.1f}, peak {load['peak_load']:.1f} "
                f"({load['chunks_answered_from_stats']} chunks answered from stats, "
                f"{load['bytes_decoded_avoided']} payload bytes never decoded)"
            )
        return "\n".join(lines)
