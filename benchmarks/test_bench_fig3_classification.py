"""Figure 3: classification of servers into lifespan/pattern classes.

Paper reference values (random sample of tens of thousands of servers,
four regions, one month): 42.1% short-lived, 53.5% long-lived stable,
0.2% long-lived with a daily or weekly pattern, 4.2% long-lived without a
pattern; 53.7% of servers expected to be predictable.
"""

from bench_utils import print_table
from repro.features.classification import ServerClassLabel, classify_frame

PAPER_PERCENTAGES = {
    "short_lived": 42.1,
    "stable": 53.5,
    "daily_or_weekly": 0.2,
    "no_pattern": 4.2,
}


def test_fig3_server_classification(benchmark, four_region_fleet):
    result = benchmark.pedantic(
        classify_frame, args=(four_region_fleet,), rounds=1, iterations=1
    )

    measured = result.percentages()
    measured_pattern = measured["daily"] + measured["weekly"]
    rows = [
        ["short-lived", PAPER_PERCENTAGES["short_lived"], measured["short_lived"]],
        ["long-lived stable", PAPER_PERCENTAGES["stable"], measured["stable"]],
        ["daily or weekly pattern", PAPER_PERCENTAGES["daily_or_weekly"], measured_pattern],
        ["no pattern", PAPER_PERCENTAGES["no_pattern"], measured["no_pattern"]],
        ["expected predictable", 53.7, result.predictable_percentage()],
    ]
    print_table(
        "Figure 3: server classification (% of servers)",
        ["class", "paper", "measured"],
        rows,
    )

    # Shape assertions: the mix must reproduce the paper's ordering --
    # stable and short-lived dominate, pattern-only servers are rare,
    # pattern-free servers are a small minority.
    assert measured["stable"] > 35.0
    assert measured["short_lived"] > 25.0
    assert measured_pattern < 5.0
    assert measured["no_pattern"] < 15.0
    assert result.predictable_percentage() > 40.0
