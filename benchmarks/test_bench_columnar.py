"""Columnar ``.sgx`` extracts vs CSV: cold-run ingestion cost.

CSV parsing dominated cold fleet runs with cheap models (every value is
re-tokenised on every read); the columnar format stores extracts as raw
little-endian column buffers that deserialise via ``numpy.frombuffer``.
This benchmark reads the *same* frames from both formats through the
data-lake negotiation path and asserts the columnar cold read is at least
3x faster (typically two orders of magnitude), that a CSV -> .sgx -> CSV
round trip is lossless, and shows what zone-map pruning saves on
time-range reads.
"""

from __future__ import annotations

import time

from bench_utils import print_table
from repro.fleet_ops.synthesis import populate_lake
from repro.storage.columnar import SgxReadStats, frame_from_sgx_bytes, sgx_summary
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.migrate import convert_lake
from repro.telemetry.fleet import default_fleet_spec

#: One region of paper-scale servers, one weekly extract cycle.
N_SERVERS = 24
SPEC_WEEKS = 2

#: Required columnar speedup on cold ingestion (measured: ~100-300x).
MIN_SPEEDUP = 3.0

#: Required payload-verification saving of a 1-day partial read over a
#: full read of a 7-day v2 extract (day chunks make ~7x achievable; the
#: floor leaves room for servers that do not span the full week).
MIN_PRUNED_BYTES_RATIO = 2.0

DAY_MINUTES = 24 * 60


def _dual_format_lake(tmp_path_factory) -> tuple[DataLakeStore, ExtractKey]:
    """A disk lake holding the same extract in both formats."""
    spec = default_fleet_spec(servers_per_region=(N_SERVERS,), weeks=SPEC_WEEKS, seed=307)
    lake = DataLakeStore(tmp_path_factory.mktemp("columnar-lake"))
    keys = populate_lake(lake, spec, weeks=[0])
    convert_lake(lake, "sgx")  # keeps the CSV source alongside
    return lake, keys[0]


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_columnar_cold_ingestion_speedup(benchmark, tmp_path_factory):
    lake, key = _dual_format_lake(tmp_path_factory)

    def read_both():
        csv_seconds = _best_of(3, lambda: lake.read_extract(key, fmt="csv"))
        sgx_seconds = _best_of(3, lambda: lake.read_extract(key, fmt="sgx"))
        return csv_seconds, sgx_seconds

    csv_seconds, sgx_seconds = benchmark.pedantic(read_both, rounds=1, iterations=1)
    speedup = csv_seconds / sgx_seconds if sgx_seconds else float("inf")
    csv_bytes = lake.extract_size_bytes(key, fmt="csv")
    sgx_bytes = lake.extract_size_bytes(key, fmt="sgx")
    rows = lake.read_extract(key).total_points()
    print_table(
        "Cold extract ingestion: CSV parse vs columnar .sgx (identical frames)",
        ["format", "rows", "bytes", "read_seconds", "speedup"],
        [
            ["csv", rows, csv_bytes, csv_seconds, 1.0],
            ["sgx", rows, sgx_bytes, sgx_seconds, speedup],
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"columnar ingestion only {speedup:.1f}x faster than CSV "
        f"(required >= {MIN_SPEEDUP}x)"
    )
    assert sgx_bytes < csv_bytes  # raw column buffers beat decimal text


def test_columnar_roundtrip_is_lossless(tmp_path_factory):
    lake, key = _dual_format_lake(tmp_path_factory)
    from_csv = lake.read_extract(key, fmt="csv")
    from_sgx = lake.read_extract(key, fmt="sgx")
    # Timestamps, values and metadata all feed the content hash.
    assert from_sgx.content_hash() == from_csv.content_hash()
    # And converting back to CSV keeps the bytes-level schema identical.
    csv_text_before = lake.read_extract_text(key)
    lake.delete_extract(key, fmt="csv")
    convert_lake(lake, "csv", delete_source=True)
    assert lake.extract_formats(key) == ("csv",)
    assert lake.read_extract_text(key) == csv_text_before


def test_columnar_partial_read_prunes_within_server(
    benchmark, tmp_path_factory, record_ratio
):
    """Format v2: a 1-day read of a 7-day extract verifies a fraction of
    the payload bytes, because per-day chunks let zone maps prune inside
    each server, not just across servers."""
    spec = default_fleet_spec(servers_per_region=(N_SERVERS,), weeks=1, seed=311)
    lake = DataLakeStore(tmp_path_factory.mktemp("chunked-lake"), write_format="sgx")
    key = populate_lake(lake, spec, weeks=[0])[0]
    fmt, raw = lake.read_extract_bytes(key)
    assert fmt == "sgx"

    # Per-server chunking is observable through the inspector walk.
    info = sgx_summary(raw)
    chunks_per_server: dict[str, int] = {}
    for chunk in info["chunks"]:
        chunks_per_server[chunk["server_id"]] = chunks_per_server.get(chunk["server_id"], 0) + 1
    assert max(chunks_per_server.values()) >= 7  # a full-week server has day chunks

    day_start = (
        min(c["min_ts"] for c in info["chunks"] if c["n_points"]) // DAY_MINUTES
    ) * DAY_MINUTES

    def read_day_vs_week():
        day_seconds = _best_of(
            3,
            lambda: frame_from_sgx_bytes(
                raw, start_minute=day_start, end_minute=day_start + DAY_MINUTES
            ),
        )
        week_seconds = _best_of(3, lambda: frame_from_sgx_bytes(raw))
        return day_seconds, week_seconds

    day_seconds, week_seconds = benchmark.pedantic(read_day_vs_week, rounds=1, iterations=1)

    full_stats = SgxReadStats()
    full = frame_from_sgx_bytes(raw, stats=full_stats)
    day_stats = SgxReadStats()
    one_day = frame_from_sgx_bytes(
        raw, start_minute=day_start, end_minute=day_start + DAY_MINUTES, stats=day_stats
    )
    print_table(
        "Within-server chunk pruning: 1-day vs 7-day read of one v2 extract",
        ["read", "servers", "points", "chunks_pruned", "payload_bytes_verified", "seconds"],
        [
            [
                "first day",
                len(one_day),
                one_day.total_points(),
                day_stats.chunks_pruned,
                day_stats.payload_bytes_verified,
                day_seconds,
            ],
            [
                "full week",
                len(full),
                full.total_points(),
                full_stats.chunks_pruned,
                full_stats.payload_bytes_verified,
                week_seconds,
            ],
        ],
    )
    assert day_stats.chunks_pruned > 0
    assert full_stats.payload_bytes_verified == full_stats.payload_bytes_total
    ratio = full_stats.payload_bytes_verified / max(day_stats.payload_bytes_verified, 1)
    assert ratio >= MIN_PRUNED_BYTES_RATIO, (
        f"1-day read verified only {ratio:.1f}x fewer payload bytes than a full "
        f"read (required >= {MIN_PRUNED_BYTES_RATIO}x)"
    )
    record_ratio("columnar_chunk_prune_bytes", ratio, floor=MIN_PRUNED_BYTES_RATIO)
    assert one_day.total_points() < full.total_points()


def test_columnar_zone_map_pruned_read(benchmark, tmp_path_factory):
    lake, key = _dual_format_lake(tmp_path_factory)
    lake.delete_extract(key, fmt="csv")
    day_minutes = 24 * 60

    def read_day_vs_week():
        day_seconds = _best_of(
            3, lambda: lake.read_extract(key, start_minute=0, end_minute=day_minutes)
        )
        week_seconds = _best_of(3, lambda: lake.read_extract(key))
        return day_seconds, week_seconds

    day_seconds, week_seconds = benchmark.pedantic(read_day_vs_week, rounds=1, iterations=1)
    one_day = lake.read_extract(key, start_minute=0, end_minute=day_minutes)
    full = lake.read_extract(key)
    print_table(
        "Zone-map pruned partial read: first day vs full week (.sgx)",
        ["read", "servers", "points", "seconds"],
        [
            ["first day", len(one_day), one_day.total_points(), day_seconds],
            ["full week", len(full), full.total_points(), week_seconds],
        ],
    )
    assert one_day.total_points() < full.total_points()
    for _server_id, _metadata, series in one_day.items():
        assert series.end < day_minutes
