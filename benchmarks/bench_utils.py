"""Helpers shared by the benchmark harness."""

from __future__ import annotations

from repro.models.base import ForecastError
from repro.models.registry import create_forecaster
from repro.timeseries.calendar import MINUTES_PER_DAY, points_per_day
from repro.timeseries.series import LoadSeries

#: The four "regions of different sizes" used across Figures 11 and 12.
REGION_SIZES = {"region-0": 120, "region-1": 60, "region-2": 30, "region-3": 15}

#: Models compared in Figure 11 (display letter as in the paper's legend).
FIGURE11_MODELS = {
    "persistent_previous_day": "PF",
    "ssa": "N (Nimbus)",
    "feedforward": "G (Gluon)",
    "seasonal_additive": "P (Prophet)",
}


def forecast_backup_day(
    model_name: str,
    series: LoadSeries,
    day: int,
    training_days: int = 7,
) -> LoadSeries | None:
    """Fit ``model_name`` on the week before ``day`` and forecast that day."""
    day_start = day * MINUTES_PER_DAY
    history = series.slice(day_start - training_days * MINUTES_PER_DAY, day_start)
    if history.is_empty:
        return None
    forecaster = create_forecaster(model_name)
    try:
        forecaster.fit(history)
        forecast = forecaster.predict(points_per_day(series.interval_minutes))
    except ForecastError:
        return None
    # Only accept forecasts that actually cover the target day: servers whose
    # telemetry stops early would otherwise produce misaligned predictions.
    if forecast.start != day_start:
        return None
    return forecast


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print one reproduced table in a fixed-width layout."""
    print(f"\n=== {title} ===")
    formatted_rows = [
        [f"{cell:.2f}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(str(header[i])), max((len(row[i]) for row in formatted_rows), default=0)) + 2
        for i in range(len(header))
    ]
    print("".join(str(h).ljust(w) for h, w in zip(header, widths, strict=True)))
    for row in formatted_rows:
        print("".join(cell.ljust(w) for cell, w in zip(row, widths, strict=True)))
