"""Fleet orchestrator: multi-region sharding and artifact-cache speedups.

The paper's production system runs the pipeline per region across the
whole fleet; the orchestrator benchmark measures the two levers this
reproduction adds on top of the single-region pipeline:

* sharding ``(region, week)`` units across a worker pool versus the
  seed's serial one-region-at-a-time loop, and
* re-running an unchanged fleet against the artifact cache (unit outcomes
  keyed by raw extract fingerprint), which skips ingestion, feature
  extraction, model fitting and evaluation entirely.

The parallel comparison is asserted only when the shared worker-count
heuristic (:func:`repro.parallel.executor.recommended_fleet_workers`:
``min(units, usable CPUs, cap)``) grants more than one worker -- a process
pool cannot beat a serial loop on one CPU; the numbers are printed either
way.  The warm-cache speedup is hardware-independent and always asserted.
"""

from __future__ import annotations

from bench_utils import print_table
from repro.core.config import PipelineConfig
from repro.fleet_ops.orchestrator import FleetOrchestrator
from repro.fleet_ops.synthesis import populate_lake
from repro.parallel.executor import recommended_fleet_workers
from repro.storage.datalake import DataLakeStore
from repro.telemetry.fleet import default_fleet_spec

#: Three differently sized regions, two weekly extract cycles each.
FLEET_SERVERS = (16, 10, 6)
EXTRACT_WEEKS = 2

#: A forecaster with a real training cost, so that compute (not CSV
#: parsing) dominates and sharding/caching effects are representative.
MODEL = "seasonal_additive"


def _make_lake(tmp_path_factory) -> DataLakeStore:
    spec = default_fleet_spec(servers_per_region=FLEET_SERVERS, weeks=4, seed=211)
    lake = DataLakeStore(tmp_path_factory.mktemp("fleet-lake"))
    populate_lake(lake, spec, weeks=range(EXTRACT_WEEKS))
    return lake


def test_fleet_parallel_vs_serial(benchmark, tmp_path_factory):
    lake = _make_lake(tmp_path_factory)
    n_units = len(FLEET_SERVERS) * EXTRACT_WEEKS
    workers = recommended_fleet_workers(n_units)
    timings: dict[str, float] = {}

    def run_both():
        with FleetOrchestrator(lake, PipelineConfig(model_name=MODEL)) as serial:
            serial_report = serial.run()
        with FleetOrchestrator(
            lake,
            PipelineConfig(model_name=MODEL),
            backend="processes",
            n_workers=workers,
        ) as parallel:
            # One throwaway unit warms the pool so measured time is compute,
            # not process start-up (the orchestrator reuses the pool).
            parallel.run(lake.list_extracts()[:1])
            parallel_report = parallel.run()
        return serial_report, parallel_report

    serial_report, parallel_report = benchmark.pedantic(run_both, rounds=1, iterations=1)
    timings["serial"] = serial_report.wall_seconds
    timings["parallel"] = parallel_report.wall_seconds

    assert serial_report.n_failed == 0
    assert parallel_report.n_failed == 0
    assert serial_report.n_units == len(FLEET_SERVERS) * EXTRACT_WEEKS

    speedup = timings["serial"] / timings["parallel"] if timings["parallel"] else float("inf")
    print_table(
        "Fleet orchestrator: serial loop vs sharded (region, week) units",
        ["variant", "backend", "workers", "units", "wall_seconds", "speedup"],
        [
            ["serial", serial_report.backend, serial_report.n_workers,
             serial_report.n_units, timings["serial"], 1.0],
            ["parallel", parallel_report.backend, parallel_report.n_workers,
             parallel_report.n_units, timings["parallel"], speedup],
        ],
    )
    if workers > 1:
        # The heuristic granted real parallelism: the sharded run must win.
        assert timings["parallel"] < timings["serial"], (
            f"parallel fleet run ({timings['parallel']:.2f}s) not faster than "
            f"serial ({timings['serial']:.2f}s) with {workers} workers"
        )
    else:
        print(
            "(recommended_fleet_workers granted 1 worker on this host: "
            "parallel-speedup assertion skipped)"
        )


def test_fleet_warm_cache_rerun(benchmark, tmp_path_factory):
    lake = _make_lake(tmp_path_factory)
    cache_dir = tmp_path_factory.mktemp("fleet-cache")

    with FleetOrchestrator(
        lake, PipelineConfig(model_name=MODEL), cache_dir=cache_dir
    ) as orchestrator:
        cold = orchestrator.run()

        def rerun_warm():
            return orchestrator.run()

        warm = benchmark.pedantic(rerun_warm, rounds=1, iterations=1)

    assert cold.n_failed == 0 and warm.n_failed == 0
    assert cold.cache_summary()["unit_hits"] == 0
    assert warm.cache_summary()["unit_hits"] == cold.n_units

    speedup = cold.wall_seconds / warm.wall_seconds if warm.wall_seconds else float("inf")
    print_table(
        "Fleet orchestrator: cold run vs warm-cache re-run (identical extracts)",
        ["variant", "units", "unit_cache_hits", "wall_seconds", "speedup"],
        [
            ["cold", cold.n_units, 0, cold.wall_seconds, 1.0],
            ["warm", warm.n_units, warm.cache_summary()["unit_hits"],
             warm.wall_seconds, speedup],
        ],
    )
    # Warm outcomes must be byte-for-byte the cold results.
    for before, after in zip(cold.outcomes, warm.outcomes, strict=True):
        assert after.summary == before.summary
        assert after.n_predictable == before.n_predictable

    # Acceptance: warm-cache re-run at least 2x faster than the cold run.
    assert warm.wall_seconds * 2 <= cold.wall_seconds, (
        f"warm rerun {warm.wall_seconds:.2f}s vs cold {cold.wall_seconds:.2f}s "
        f"(speedup {speedup:.1f}x < 2x)"
    )
