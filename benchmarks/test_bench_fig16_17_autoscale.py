"""Figures 16 and 17: model accuracy and runtime for the auto-scale use case.

Figure 16 reports Mean NRMSE and MASE per model for 24-hour-ahead forecasts
of SQL database CPU load; Figure 17 reports training and inference runtime.
The paper's conclusion: persistent forecast again finds the middle ground
between accuracy and computational overhead (GluonTS/ARIMA train far
longer without a decisive accuracy win).
"""

from bench_utils import print_table
from repro.autoscale.predictor import AutoscalePredictor
from repro.models.registry import MODEL_DISPLAY_NAMES

MODELS = ("persistent_previous_day", "ssa", "feedforward", "seasonal_additive")
N_DATABASES = 20


def test_fig16_17_autoscale_model_comparison(benchmark, sql_fleet):
    subset = sql_fleet.select(sql_fleet.server_ids()[:N_DATABASES])
    predictor = AutoscalePredictor(training_days=7)

    def run():
        return predictor.evaluate_fleet(subset, model_names=MODELS)

    evaluation = benchmark.pedantic(run, rounds=1, iterations=1)
    scores = {score.model_name: score for score in evaluation.scores()}

    print_table(
        "Figure 16: model accuracy (SQL databases, 24h ahead)",
        ["model", "mean NRMSE", "mean MASE", "databases"],
        [
            [MODEL_DISPLAY_NAMES[name], scores[name].mean_nrmse, scores[name].mean_mase,
             scores[name].n_databases]
            for name in MODELS
        ],
    )
    print_table(
        "Figure 17: training and inference runtime (seconds)",
        ["model", "training", "inference"],
        [
            [MODEL_DISPLAY_NAMES[name], scores[name].total_fit_seconds,
             scores[name].total_inference_seconds]
            for name in MODELS
        ],
    )

    persistent = scores["persistent_previous_day"]
    neural = scores["feedforward"]

    # Shape assertions:
    # 1. Persistent forecast trains in negligible time; the neural model does not.
    assert persistent.total_fit_seconds < 0.5
    assert neural.total_fit_seconds > persistent.total_fit_seconds
    # 2. Persistent forecast's accuracy is competitive: not dramatically worse
    #    than the best model (no decisive win for the expensive models).
    best_nrmse = min(score.mean_nrmse for score in scores.values())
    assert persistent.mean_nrmse <= best_nrmse * 2.0 + 0.1
    # 3. Every model produced forecasts for every database it was given.
    assert all(score.n_databases > 0 for score in scores.values())
