"""Appendix A.1: classification of SQL databases (Definition 10).

Paper value: 19.36% of a random sample of single standard/premium SQL
databases are stable under the one-standard-deviation rule.
"""

from bench_utils import print_table
from repro.autoscale.classification import classify_databases


def test_appA_sql_database_classification(benchmark, sql_fleet):
    result = benchmark.pedantic(classify_databases, args=(sql_fleet,), rounds=1, iterations=1)

    print_table(
        "Appendix A.1: SQL database classification",
        ["class", "paper %", "measured %"],
        [
            ["stable", 19.36, result.pct_stable],
            ["unstable", 80.64, result.pct_unstable],
        ],
    )

    # Shape: a minority of databases is stable, the rest unstable.
    assert 5.0 < result.pct_stable < 50.0
    assert result.pct_unstable > result.pct_stable
    assert result.n_databases == len(sql_fleet)
