"""Prediction serving: batched + cached serving vs a naive per-call loop.

The backup scheduler and the autoscale predictor ask the serving layer for
overlapping horizon windows day after day.  The naive consumer the serving
API replaces held raw forecasters and re-ran a model per call; the
:class:`~repro.serving.service.PredictionService` resolves the model
version once per batch and answers repeated horizon queries from its LRU
prediction cache.

Asserted (part of the CI bench smoke): serving ``ROUNDS`` of daily horizon
queries over a ``N_SERVERS``-server region with ``predict_batch`` + cache
is at least 2x faster than the same queries as naive per-call,
cache-bypassing predictions -- with the cache-hit counters exposed on the
responses proving where the win came from.
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import print_table
from repro.models.ssa import SsaForecaster
from repro.serving import PredictionRequest, PredictionService
from repro.timeseries.calendar import MINUTES_PER_DAY, points_per_day
from repro.timeseries.series import LoadSeries

#: Fleet size the batch is fanned over (acceptance: >= 200 servers).
N_SERVERS = 200

#: Daily horizon-query rounds (scheduler + autoscale asking overlapping
#: windows); rounds after the first are pure cache territory.
ROUNDS = 4

#: 15-minute telemetry keeps the SSA fit cheap while its recurrent
#: forecast keeps per-call inference costly enough to be representative.
INTERVAL_MINUTES = 15
HISTORY_DAYS = 7


def _history(seed: int) -> LoadSeries:
    """A noisy diurnal week of telemetry for one server."""
    rng = np.random.default_rng(seed)
    points_day = MINUTES_PER_DAY // INTERVAL_MINUTES
    n = HISTORY_DAYS * points_day
    phase = 2 * np.pi * np.arange(n) / points_day
    values = 20.0 + 15.0 * (1 + np.sin(phase - np.pi / 2)) + rng.normal(0, 0.4, n)
    return LoadSeries.from_values(
        np.clip(values, 0.0, 100.0), interval_minutes=INTERVAL_MINUTES
    )


def _deploy_fleet(service: PredictionService, region: str) -> int:
    """Fit one SSA forecaster per server and deploy them as one version."""
    forecasters = {}
    for index in range(N_SERVERS):
        history = _history(1000 + index)
        forecaster = SsaForecaster(window_points=48, rank=4)
        forecaster.fit(history)
        forecasters[f"srv-{index:04d}"] = forecaster
    service.deploy(region, "ssa", trained_week=1, forecasters=forecasters)
    return points_per_day(INTERVAL_MINUTES)


def test_batched_cached_serving_beats_naive_per_call_loop(benchmark):
    service = PredictionService()
    n_points = _deploy_fleet(service, "bench-region")
    server_ids = service.servers("bench-region")
    assert len(server_ids) == N_SERVERS

    # Naive baseline: one request per server per round, no batching, no
    # cache -- the model runs for every single call.
    naive_started = time.perf_counter()
    naive_served = 0
    for _ in range(ROUNDS):
        for server_id in server_ids:
            response = service.predict(
                PredictionRequest(
                    region="bench-region",
                    server_id=server_id,
                    n_points=n_points,
                    use_cache=False,
                )
            )
            naive_served += 1
            assert not response.cache_hit
    naive_seconds = time.perf_counter() - naive_started

    # Batched + cached: one predict_batch per round; rounds after the
    # first are answered from the prediction cache.
    def serve_rounds():
        return [
            service.predict_batch(region="bench-region", n_points=n_points)
            for _ in range(ROUNDS)
        ]

    batched_started = time.perf_counter()
    batches = benchmark.pedantic(serve_rounds, rounds=1, iterations=1)
    batched_seconds = time.perf_counter() - batched_started

    assert naive_served == ROUNDS * N_SERVERS
    for batch in batches:
        assert batch.n_served == N_SERVERS
        assert batch.skipped == () and batch.failed == ()
    # The cache-hit counters exposed on the responses prove the win: the
    # cold round computes everything, the warm rounds compute nothing.
    assert batches[0].cache_hits == 0
    for warm in batches[1:]:
        assert warm.cache_hits == N_SERVERS
        assert all(response.cache_hit for response in warm.responses)
        assert warm.predictions() == batches[0].predictions()

    speedup = naive_seconds / batched_seconds if batched_seconds else float("inf")
    cache_stats = service.cache.stats
    print_table(
        f"Serving {ROUNDS} daily horizon rounds over {N_SERVERS} servers",
        ["variant", "requests", "cache_hits", "wall_seconds", "speedup"],
        [
            ["naive per-call", naive_served, 0, naive_seconds, 1.0],
            [
                "batched+cached",
                ROUNDS * N_SERVERS,
                sum(batch.cache_hits for batch in batches),
                batched_seconds,
                speedup,
            ],
        ],
    )
    print(
        f"prediction cache: {cache_stats.hits} hits / {cache_stats.misses} misses "
        f"(hit rate {cache_stats.hit_rate:.0%}, size {cache_stats.size})"
    )

    # Acceptance: batched + cached serving at least 2x the naive loop.
    assert batched_seconds * 2 <= naive_seconds, (
        f"batched+cached serving {batched_seconds:.3f}s vs naive "
        f"{naive_seconds:.3f}s (speedup {speedup:.1f}x < 2x)"
    )
