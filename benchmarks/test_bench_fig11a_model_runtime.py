"""Figure 11(a): training and inference runtime per model vs. number of servers.

Paper observations (10 to 700 servers): persistent forecast needs no
training; NimbusML (SSA) and GluonTS (feed-forward) scale roughly linearly
from seconds to minutes; Prophet is by far the slowest and stops scaling;
ARIMA's per-server order search is so expensive it is excluded outright.

The reproduction sweeps smaller fleets (10/20/40 unstable servers) but must
show the same ordering: PF << SSA, feed-forward << Prophet-style seasonal,
and ARIMA slowest per server.
"""

import time

import pytest

from bench_utils import FIGURE11_MODELS, forecast_backup_day, print_table
from repro.features.classification import ServerClassLabel, classify_frame
from repro.models.arima import ArimaConfig, ArimaForecaster
from repro.timeseries.calendar import MINUTES_PER_DAY

SERVER_COUNTS = (10, 20, 40)
BACKUP_DAY = 27


def _target_servers(fleet, count):
    """Prefer unstable (pattern-free) servers, topping up with others."""
    classification = classify_frame(fleet)
    unstable = classification.servers_with(ServerClassLabel.NO_PATTERN)
    others = [
        sid for sid, label in classification.labels.items()
        if label not in (ServerClassLabel.NO_PATTERN, ServerClassLabel.SHORT_LIVED)
    ]
    chosen = (unstable + others)[:count]
    return chosen


@pytest.mark.parametrize("model_name", list(FIGURE11_MODELS))
def test_fig11a_training_and_inference_runtime(benchmark, four_region_fleet, model_name):
    rows = []

    def sweep():
        for count in SERVER_COUNTS:
            servers = _target_servers(four_region_fleet, count)
            started = time.perf_counter()
            produced = 0
            for server_id in servers:
                forecast = forecast_backup_day(
                    model_name, four_region_fleet.series(server_id), BACKUP_DAY
                )
                if forecast is not None:
                    produced += 1
            elapsed = time.perf_counter() - started
            rows.append([FIGURE11_MODELS[model_name], count, produced, elapsed])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Figure 11(a): train+inference runtime, model {FIGURE11_MODELS[model_name]}",
        ["model", "servers", "forecasts", "seconds"],
        rows,
    )
    # Runtime must grow (weakly) with the number of servers.
    times = [row[3] for row in rows]
    assert times[0] <= times[-1] * 1.5 + 0.5


def test_fig11a_model_runtime_ordering(benchmark, four_region_fleet):
    """Persistent forecast must be the cheapest model and the seasonal
    (Prophet stand-in) must cost more than SSA on the same servers."""
    servers = _target_servers(four_region_fleet, 15)

    def measure(model_name):
        started = time.perf_counter()
        for server_id in servers:
            forecast_backup_day(model_name, four_region_fleet.series(server_id), BACKUP_DAY)
        return time.perf_counter() - started

    def sweep():
        return {name: measure(name) for name in FIGURE11_MODELS}

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Figure 11(a): runtime ordering (15 servers)",
        ["model", "seconds"],
        [[FIGURE11_MODELS[name], seconds] for name, seconds in timings.items()],
    )
    assert timings["persistent_previous_day"] <= min(
        timings["ssa"], timings["feedforward"], timings["seasonal_additive"]
    )


def test_fig11a_arima_excluded_for_cost(benchmark, four_region_fleet):
    """ARIMA's per-server fit is orders of magnitude above persistent
    forecast, reproducing the paper's reason for excluding it."""
    servers = _target_servers(four_region_fleet, 2)

    def measure():
        persistent_seconds = 0.0
        arima_seconds = 0.0
        for server_id in servers:
            series = four_region_fleet.series(server_id)
            started = time.perf_counter()
            forecast_backup_day("persistent_previous_day", series, BACKUP_DAY)
            persistent_seconds += time.perf_counter() - started

            day_start = BACKUP_DAY * MINUTES_PER_DAY
            history = series.slice(day_start - 7 * MINUTES_PER_DAY, day_start)
            started = time.perf_counter()
            ArimaForecaster(ArimaConfig(max_p=2, max_d=1, max_q=2)).fit(history).predict(288)
            arima_seconds += time.perf_counter() - started
        return persistent_seconds, arima_seconds

    persistent_seconds, arima_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Figure 11(a) footnote: ARIMA exclusion (2 servers)",
        ["model", "seconds"],
        [["Persistent Forecast", persistent_seconds], ["ARIMA (grid search)", arima_seconds]],
    )
    assert arima_seconds > 10 * persistent_seconds
