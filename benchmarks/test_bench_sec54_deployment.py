"""Section 5.4: the deployed configuration (previous-day persistent forecast).

Paper values for the fleet-wide deployment: 99% of low-load windows chosen
correctly, load predicted accurately during 96% of windows, 75% of
long-lived servers classified as predictable.
"""

from bench_utils import print_table
from repro.core.config import PipelineConfig
from repro.core.pipeline import SeagullPipeline


def test_sec54_deployed_persistent_forecast(benchmark, four_region_fleet):
    pipeline = SeagullPipeline(PipelineConfig())

    def run():
        return pipeline.run(four_region_fleet, region="all-regions", week=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = result.summary
    assert result.succeeded and summary is not None
    print_table(
        "Section 5.4: deployed persistent forecast (previous day), whole fleet",
        ["metric", "paper", "measured"],
        [
            ["% LL windows chosen correctly", 99.0, summary.pct_windows_correct],
            ["% windows with accurate load", 96.0, summary.pct_load_accurate],
            ["% predictable long-lived servers", 75.0, summary.pct_predictable_servers],
        ],
    )
    # Shape: very high window correctness and load accuracy; a noticeably
    # lower (but still majority) share of servers passes the strict
    # three-week predictability gate.
    assert summary.pct_windows_correct > 90.0
    assert summary.pct_load_accurate > 85.0
    assert 50.0 < summary.pct_predictable_servers <= 100.0
    assert summary.pct_predictable_servers < summary.pct_windows_correct
