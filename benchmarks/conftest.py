"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
synthetic substrate and prints the corresponding rows/series, so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the whole evaluation
section.  Fleet sizes are scaled down from production so the harness runs
on a laptop; the qualitative shapes (who wins, orderings, crossovers) are
what is being reproduced, not absolute numbers.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from bench_utils import REGION_SIZES
from repro.telemetry.fleet import default_fleet_spec, sql_database_fleet_spec
from repro.telemetry.generator import WorkloadGenerator
from repro.timeseries.frame import LoadFrame


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help=(
            "Write the ratios benchmarks assert on (via the record_ratio "
            "fixture) to PATH as JSON, for baseline comparison with "
            "scripts/bench_baseline.py."
        ),
    )


_RATIO_STASH = pytest.StashKey()


@pytest.fixture
def record_ratio(request):
    """Record a named, deterministic benchmark ratio for the baseline gate.

    Benchmarks call ``record_ratio(name, value, floor=...)`` for each ratio
    they assert on (bytes saved, speedups with stable denominators, ...).
    With ``--bench-json PATH`` the collected ratios are written as JSON at
    session end; ``scripts/bench_baseline.py`` compares such a file against
    the committed ``BENCH_seed.json`` and fails on regressions.
    """
    ratios = request.config.stash.setdefault(_RATIO_STASH, {})

    def record(name: str, value: float, *, floor: float) -> None:
        ratios[name] = {"value": float(value), "floor": float(floor)}

    return record


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path:
        return
    ratios = session.config.stash.get(_RATIO_STASH, {})
    payload = {"ratios": {name: ratios[name] for name in sorted(ratios)}}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def four_region_fleet() -> LoadFrame:
    """A four-region fleet mirroring the paper's four differently sized regions."""
    spec = default_fleet_spec(
        servers_per_region=tuple(REGION_SIZES.values()), weeks=4, seed=101
    )
    return WorkloadGenerator(spec).generate_fleet()


@pytest.fixture(scope="session")
def region_frames(four_region_fleet) -> dict[str, LoadFrame]:
    return {
        region: four_region_fleet.filter(lambda md, s, region=region: md.region == region)
        for region in REGION_SIZES
    }


@pytest.fixture(scope="session")
def sql_fleet() -> LoadFrame:
    spec = sql_database_fleet_spec(n_databases=80, weeks=4, seed=131)
    return WorkloadGenerator(spec).generate_fleet()
