"""Live ingestion: WAL appends vs naive per-batch extract rewrites.

The streaming collector's whole reason to exist is that appending a
CRC-framed batch to ``tail.wal`` is O(batch) while the naive alternative
-- read-modify-write the committed extract on every arriving batch -- is
O(history): each rewrite re-encodes everything received so far.  The
first benchmark streams one synthetic fleet-day through both paths (both
end with the day committed and queryable) and asserts the live path
sustains at least twice the naive throughput.

The second benchmark checks that sealing costs readers nothing: the
sealed segment is an ordinary format-v4 extract whose chunks align to
``chunk_minutes``, so a day-aligned rollup over it is answered entirely
from chunk statistics -- zero payload bytes re-decoded.
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import print_table
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.live import LiveIngestor
from repro.storage.query import ExtractQuery
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

REGION = "region-live"
KEY = ExtractKey(region=REGION, week=0)
N_SERVERS = 6
BATCH_MINUTES = 30  # 48 batch rounds per day
SERVERS = [ServerMetadata(server_id=f"srv-{i}", region=REGION) for i in range(N_SERVERS)]

#: Required throughput advantage of WAL appends over per-batch rewrites.
#: The naive path is O(history) per batch so the structural gap grows
#: with the day; 2x is a conservative floor for 48 rounds.
MIN_INGEST_THROUGHPUT_RATIO = 2.0

#: Timing ratios depend on the machine; the recorded baseline value is
#: capped here so ``BENCH_seed.json`` stays comparable across hosts.
RECORDED_RATIO_CAP = 4.0


def _day_batches() -> list[tuple[int, np.ndarray, np.ndarray]]:
    """``(server_index, timestamps, loads)`` for one diurnal fleet-day."""
    rng = np.random.default_rng(701)
    batches = []
    for offset in range(0, MINUTES_PER_DAY, BATCH_MINUTES):
        ts = np.arange(offset, offset + BATCH_MINUTES, dtype=np.int64)
        phase = 2.0 * np.pi * ts / MINUTES_PER_DAY
        load = 50.0 + 20.0 * np.sin(phase)
        for index in range(N_SERVERS):
            noisy = np.maximum(load + rng.normal(0.0, 1.0, ts.size), 0.0)
            batches.append((index, ts, noisy))
    return batches


def _ingest_live(root) -> int:
    store = DataLakeStore(root, write_format="sgx")
    rows = 0
    with LiveIngestor(store, interval_minutes=1, chunk_minutes=MINUTES_PER_DAY) as ing:
        for index, ts, vs in _day_batches():
            rows += ing.ingest(KEY, SERVERS[index], ts, vs)
        ing.seal(KEY, MINUTES_PER_DAY)
    return rows


def _ingest_naive(root) -> int:
    """The collector without a WAL: rewrite the extract per batch round."""
    store = DataLakeStore(root, write_format="sgx", chunk_minutes=MINUTES_PER_DAY)
    history: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
    pending = 0
    rows = 0
    for index, ts, vs in _day_batches():
        history.setdefault(index, []).append((ts, vs))
        pending += 1
        if pending < N_SERVERS:
            continue  # one rewrite per arrival wave, like the live path's rounds
        pending = 0
        frame = LoadFrame(interval_minutes=1)
        for server_index, chunks in sorted(history.items()):
            series = LoadSeries(
                np.concatenate([c[0] for c in chunks]),
                np.concatenate([c[1] for c in chunks]),
                interval_minutes=1,
            )
            frame.add_server(SERVERS[server_index], series)
        rows = store.write_extract(KEY, frame)
    return rows


def test_live_ingest_beats_per_batch_rewrites(benchmark, tmp_path_factory, record_ratio):
    day_rows = N_SERVERS * MINUTES_PER_DAY

    def run_both():
        live_root = tmp_path_factory.mktemp("live-lake")
        naive_root = tmp_path_factory.mktemp("naive-lake")
        started = time.perf_counter()
        live_rows = _ingest_live(live_root)
        live_seconds = time.perf_counter() - started
        started = time.perf_counter()
        naive_rows = _ingest_naive(naive_root)
        naive_seconds = time.perf_counter() - started
        assert live_rows == naive_rows == day_rows
        # Both paths committed identical telemetry.
        for root in (live_root, naive_root):
            result = DataLakeStore(root).query(
                ExtractQuery.for_key(KEY, interval_minutes=None)
            )
            assert result.rows == day_rows
        return live_seconds, naive_seconds

    live_seconds, naive_seconds = benchmark.pedantic(run_both, rounds=1, iterations=1)
    ratio = naive_seconds / live_seconds

    print_table(
        "Live ingestion: one fleet-day in 30-minute batches, both paths committed",
        ["path", "rows", "seconds", "rows/sec", "ratio"],
        [
            ["naive per-batch write_extract", day_rows, naive_seconds, day_rows / naive_seconds, 1.0],
            ["WAL append + one seal", day_rows, live_seconds, day_rows / live_seconds, ratio],
        ],
    )

    assert ratio >= MIN_INGEST_THROUGHPUT_RATIO, (
        f"live ingestion was only {ratio:.1f}x the naive per-batch rewrite "
        f"throughput (required >= {MIN_INGEST_THROUGHPUT_RATIO}x)"
    )
    record_ratio(
        "live_ingest_throughput",
        min(ratio, RECORDED_RATIO_CAP),
        floor=MIN_INGEST_THROUGHPUT_RATIO,
    )


def test_sealed_day_aligned_reads_decode_zero_bytes(tmp_path_factory, record_ratio):
    root = tmp_path_factory.mktemp("sealed-lake")
    _ingest_live(root)
    store = DataLakeStore(root)

    rollup = store.query(
        ExtractQuery.for_key(
            KEY, aggregates=("count", "mean", "max"), group_by=("server", "day")
        )
    )
    rows = store.query(ExtractQuery.for_key(KEY, interval_minutes=None))

    print_table(
        "Sealed segment: day-aligned rollup vs materialising the rows",
        ["query", "chunks_from_stats", "bytes_verified", "bytes_avoided"],
        [
            ["row path", rows.stats.chunks_answered_from_stats,
             rows.stats.payload_bytes_verified, rows.stats.bytes_decoded_avoided],
            ["day-aligned rollup", rollup.stats.chunks_answered_from_stats,
             rollup.stats.payload_bytes_verified, rollup.stats.bytes_decoded_avoided],
        ],
    )

    # The seal wrote an ordinary v4 segment chunked at chunk_minutes, so
    # day-aligned aggregation re-decodes nothing at all.
    assert rollup.stats.payload_bytes_verified == 0
    assert rollup.stats.chunks_seen > 0
    assert rollup.stats.bytes_decoded_avoided > 0
    coverage = rollup.stats.chunks_answered_from_stats / rollup.stats.chunks_seen
    record_ratio("live_seal_stats_coverage", coverage, floor=1.0)

    # And the statistics answers are exact, not approximate.
    total = sum(int(group["count"]) for group in rollup.aggregates.values())
    assert total == rows.rows == N_SERVERS * MINUTES_PER_DAY
    peak = max(float(group["max"]) for group in rollup.aggregates.values())
    frame_values = [s.values for _sid, _md, s in rows.frame.items()]
    assert peak == max(float(v.max()) for v in frame_values)
