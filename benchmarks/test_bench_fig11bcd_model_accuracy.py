"""Figure 11(b)-(d): low-load prediction accuracy per model and region.

For unstable servers without a recognisable pattern the paper reports, per
region and model: the percentage of correctly chosen LL windows (b), the
percentage of LL windows with accurately predicted load (c), and the
percentage of predictable servers (d).  The headline finding is that the ML
models are *not* significantly more accurate than persistent forecast.
"""

import pytest

from bench_utils import FIGURE11_MODELS, REGION_SIZES, forecast_backup_day, print_table
from repro.features.classification import ServerClassLabel, classify_frame
from repro.metrics.evaluation import AccuracyEvaluationModule

EVALUATION_DAYS = (13, 20, 27)
MAX_SERVERS_PER_REGION = 12


def _unstable_servers(frame, limit):
    classification = classify_frame(frame)
    unstable = classification.servers_with(ServerClassLabel.NO_PATTERN)
    return unstable[:limit]


def _evaluate_model(frame, server_ids, model_name):
    predictions = {}
    days = {}
    for server_id in server_ids:
        series = frame.series(server_id)
        combined = None
        used_days = []
        for day in EVALUATION_DAYS:
            forecast = forecast_backup_day(model_name, series, day)
            if forecast is None:
                continue
            used_days.append(day)
            combined = forecast if combined is None else combined.concat(forecast)
        if combined is not None:
            predictions[server_id] = combined
            days[server_id] = used_days
    module = AccuracyEvaluationModule()
    evaluations = module.evaluate(frame, predictions, days)
    return module.summarize(evaluations)


def test_fig11bcd_accuracy_per_model_and_region(benchmark, region_frames):
    rows = []

    def sweep():
        for region, frame in region_frames.items():
            servers = _unstable_servers(frame, MAX_SERVERS_PER_REGION)
            if not servers:
                continue
            for model_name, display in FIGURE11_MODELS.items():
                summary = _evaluate_model(frame, servers, model_name)
                rows.append(
                    [
                        region,
                        display,
                        len(servers),
                        summary.pct_windows_correct,
                        summary.pct_load_accurate,
                        summary.pct_predictable_servers,
                    ]
                )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Figure 11(b)-(d): accuracy on unstable servers without pattern",
        ["region", "model", "servers", "% LL windows correct", "% load accurate", "% predictable"],
        rows,
    )

    assert rows, "expected at least one region with unstable servers"

    # Headline shape: persistent forecast's accuracy is within striking
    # distance of the best ML model (the paper found no significant gap).
    per_model_windows = {}
    for row in rows:
        per_model_windows.setdefault(row[1], []).append(row[3])
    averages = {model: sum(values) / len(values) for model, values in per_model_windows.items()}
    best = max(averages.values())
    assert averages["PF"] >= best - 25.0

    # Every model must choose a majority of windows correctly on average.
    for model, average in averages.items():
        assert average > 50.0, f"{model} chose too few LL windows correctly"
