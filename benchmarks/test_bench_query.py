"""Query pushdown vs full reads: bytes CRC-verified at the storage layer.

The declarative query surface (``DataLakeStore.query`` with a typed
``ExtractQuery``) pushes the server allow-list and column projection down
into the ``.sgx`` reader, so a selective query never decodes or checksums
the chunks it does not need.  This benchmark builds a two-region,
200-server lake and asserts that a 1-region / 10-of-200-servers /
2-column query CRC-verifies at least 2x fewer payload bytes than a full
read of the lake (measured: ~20x -- 10 of 200 servers' payloads), and
that a timestamps-only projection halves the verified bytes again.
"""

from __future__ import annotations

import time

from bench_utils import print_table
from repro.fleet_ops.synthesis import populate_lake
from repro.storage.datalake import DataLakeStore
from repro.storage.query import ExtractQuery
from repro.telemetry.fleet import default_fleet_spec

#: Two regions of 100 servers each: "10-of-200-servers" selectivity.
SERVERS_PER_REGION = (100, 100)
N_SELECTED = 10

#: Required payload-verification saving of the selective query over the
#: full read (the server filter alone makes ~20x achievable; the floor
#: leaves room for dictionary/structure overhead and uneven servers).
MIN_PUSHDOWN_BYTES_RATIO = 2.0


def _query_lake(tmp_path_factory) -> DataLakeStore:
    spec = default_fleet_spec(servers_per_region=SERVERS_PER_REGION, weeks=1, seed=401)
    lake = DataLakeStore(tmp_path_factory.mktemp("query-lake"), write_format="sgx")
    populate_lake(lake, spec, weeks=[0])
    return lake


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_query_pushdown_verifies_fraction_of_payload(
    benchmark, tmp_path_factory, record_ratio
):
    lake = _query_lake(tmp_path_factory)
    region = "region-0"
    # (Timing fairness: each _best_of below runs 3 rounds and keeps the
    # minimum, so both timed queries report warm-page-cache numbers.)
    server_ids = tuple(
        metadata.server_id
        for index, (_key, metadata, _series) in enumerate(
            lake.scan(ExtractQuery(regions=(region,), columns=("timestamps",)))
        )
        if index < N_SELECTED
    )
    assert len(server_ids) == N_SELECTED

    full_query = ExtractQuery()  # every region, every server, both columns
    pushed_query = ExtractQuery(regions=(region,), servers=server_ids)

    def run_both():
        pushed_seconds = _best_of(3, lambda: lake.query(pushed_query))
        full_seconds = _best_of(3, lambda: lake.query(full_query))
        return pushed_seconds, full_seconds

    pushed_seconds, full_seconds = benchmark.pedantic(run_both, rounds=1, iterations=1)

    full = lake.query(full_query)
    pushed = lake.query(pushed_query)
    projected = lake.query(
        ExtractQuery(regions=(region,), servers=server_ids, columns=("timestamps",))
    )

    ratio = full.stats.payload_bytes_verified / max(pushed.stats.payload_bytes_verified, 1)
    projected_ratio = pushed.stats.payload_bytes_verified / max(
        projected.stats.payload_bytes_verified, 1
    )
    print_table(
        "Query pushdown: 1-region / 10-of-200-servers / column projection vs full read",
        ["query", "servers", "rows", "bytes_verified", "bytes_stored", "seconds", "ratio"],
        [
            [
                "full lake",
                full.n_servers,
                full.rows,
                full.stats.payload_bytes_verified,
                full.stats.payload_bytes_stored,
                full_seconds,
                1.0,
            ],
            [
                "1 region, 10 servers",
                pushed.n_servers,
                pushed.rows,
                pushed.stats.payload_bytes_verified,
                pushed.stats.payload_bytes_stored,
                pushed_seconds,
                ratio,
            ],
            [
                "+ timestamps only",
                projected.n_servers,
                projected.rows,
                projected.stats.payload_bytes_verified,
                projected.stats.payload_bytes_stored,
                float("nan"),
                ratio * projected_ratio,
            ],
        ],
    )

    # Full reads verify everything they store; the selective query must
    # verify at least 2x fewer payload bytes (measured ~20x).
    assert full.stats.payload_bytes_verified == full.stats.payload_bytes_stored
    assert pushed.n_servers == N_SELECTED
    assert pushed.stats.servers_skipped == SERVERS_PER_REGION[0] - N_SELECTED
    assert ratio >= MIN_PUSHDOWN_BYTES_RATIO, (
        f"selective query verified only {ratio:.1f}x fewer payload bytes than a "
        f"full read (required >= {MIN_PUSHDOWN_BYTES_RATIO}x)"
    )
    record_ratio("query_pushdown_bytes", ratio, floor=MIN_PUSHDOWN_BYTES_RATIO)
    # Dropping the values column halves the verified bytes again (per-column
    # CRCs, format v3+).
    assert projected_ratio >= 1.9
    record_ratio("query_projection_bytes", projected_ratio, floor=1.9)
    # And the answers agree: pushdown changes cost, not content.
    assert pushed.frame.content_hash() == (
        full.frame.filter(
            lambda md, _s: md.region == region and md.server_id in set(server_ids)
        ).content_hash()
    )
