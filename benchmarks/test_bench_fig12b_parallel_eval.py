"""Figure 12(b): single-threaded vs. parallel accuracy evaluation.

The paper partitions input per server and runs Accuracy Evaluation in
parallel with Dask: parallel execution loses slightly on the smallest
inputs but wins consistently on large ones, both when evaluating the backup
day only and when evaluating every day one week ahead (3-4.6x speed-up).

The reproduction compares the serial executor against the multi-process
executor on the largest synthetic region, for both evaluation scopes.
"""

import pytest

from bench_utils import forecast_backup_day, print_table
from repro.metrics.evaluation import AccuracyEvaluationModule
from repro.parallel.executor import PartitionedExecutor

BACKUP_DAY = 27
WEEK_DAYS = tuple(range(21, 28))


def _build_predictions(frame, days):
    predictions = {}
    days_by_server = {}
    for server_id in frame.server_ids():
        series = frame.series(server_id)
        combined = None
        used = []
        for day in days:
            forecast = forecast_backup_day("persistent_previous_day", series, day)
            if forecast is None:
                continue
            used.append(day)
            combined = forecast if combined is None else combined.concat(forecast)
        if combined is not None:
            predictions[server_id] = combined
            days_by_server[server_id] = used
    return predictions, days_by_server


@pytest.mark.parametrize(
    "scope,days",
    [("backup day", (BACKUP_DAY,)), ("one week ahead", WEEK_DAYS)],
)
def test_fig12b_serial_vs_parallel_accuracy_evaluation(
    benchmark, region_frames, scope, days
):
    frame = region_frames["region-0"]  # the largest region
    predictions, days_by_server = _build_predictions(frame, days)

    serial = AccuracyEvaluationModule(executor=PartitionedExecutor.serial())
    parallel = AccuracyEvaluationModule(
        executor=PartitionedExecutor("threads", n_workers=4)
    )

    def run_both():
        serial_results = serial.evaluate(frame, predictions, days_by_server)
        serial_seconds = serial.executor.last_report.elapsed_seconds
        parallel_results = parallel.evaluate(
            frame, predictions, days_by_server, n_partitions=4
        )
        parallel_seconds = parallel.executor.last_report.elapsed_seconds
        return serial_results, serial_seconds, parallel_results, parallel_seconds

    serial_results, serial_seconds, parallel_results, parallel_seconds = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("nan")
    print_table(
        f"Figure 12(b): accuracy evaluation, {scope}",
        ["execution", "server-days", "seconds"],
        [
            ["single-threaded", len(serial_results), serial_seconds],
            ["parallel (4 workers)", len(parallel_results), parallel_seconds],
            ["speed-up", "", speedup],
        ],
    )

    # Correctness: both execution modes agree on every evaluation.
    key = lambda e: (e.server_id, e.day, e.window_correct, e.load_accurate)
    assert sorted(map(key, serial_results)) == sorted(map(key, parallel_results))
    # Both scopes produce work proportional to the number of days evaluated.
    assert len(serial_results) >= len(predictions) * len(days) * 0.5
