"""Aggregation pushdown: rollups answered from chunk statistics, not rows.

Format v4 stores count/sum/min/max/sum-of-squares per chunk column, so a
fleet rollup (``aggregates=... group_by=...``) over chunks that lie fully
inside the query scope never touches their value payloads.  This
benchmark builds a two-region fleet-month lake and asserts that a
month-long per-(server, day) rollup CRC-verifies and decodes at least
10x fewer payload bytes than materialising the same rows (a day-aligned
month decodes *zero*; the asserted run cuts mid-day on both ends so the
edge chunks keep the ratio honest), and that the rollup's reductions
match a recompute over the materialised frame.
"""

from __future__ import annotations

import time

from bench_utils import print_table
from repro.fleet_ops.synthesis import populate_lake
from repro.storage.datalake import DataLakeStore
from repro.storage.query import ExtractQuery
from repro.telemetry.fleet import default_fleet_spec
from repro.timeseries.calendar import MINUTES_PER_DAY

#: A fleet-month: two regions, one snapshot extract each carrying the
#: full four-week training horizon (weekly extracts overlap by design --
#: each repeats its history -- so the month is one extract per region).
SERVERS_PER_REGION = (60, 40)
WEEKS = 4

#: Required decode saving of the aggregate path over the row path for the
#: mid-day-cut month (26 of 28 days per server answered from statistics,
#: so ~14x is structural; the floor leaves slack for uneven extracts).
MIN_AGGREGATE_BYTES_RATIO = 10.0

ROLLUP = dict(aggregates=("count", "mean", "max"), group_by=("server", "day"))


def _month_lake(tmp_path_factory) -> DataLakeStore:
    spec = default_fleet_spec(servers_per_region=SERVERS_PER_REGION, weeks=WEEKS, seed=601)
    lake = DataLakeStore(tmp_path_factory.mktemp("agg-lake"), write_format="sgx")
    populate_lake(lake, spec, weeks=[WEEKS - 1])
    return lake


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_aggregate_rollup_decodes_fraction_of_row_path(
    benchmark, tmp_path_factory, record_ratio
):
    lake = _month_lake(tmp_path_factory)
    month = WEEKS * 7 * MINUTES_PER_DAY
    # Cut mid-day on both ends: the first and last day of every server are
    # partial chunks the aggregate path must genuinely decode.
    row_query = ExtractQuery(start_minute=360, end_minute=month - 360)
    agg_query = ExtractQuery(start_minute=360, end_minute=month - 360, **ROLLUP)

    def run_both():
        agg_seconds = _best_of(3, lambda: lake.query(agg_query))
        row_seconds = _best_of(3, lambda: lake.query(row_query))
        return agg_seconds, row_seconds

    agg_seconds, row_seconds = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = lake.query(row_query)
    rollup = lake.query(agg_query)
    aligned = lake.query(ExtractQuery(**ROLLUP))  # day-aligned: whole lake

    ratio = rows.stats.payload_bytes_verified / max(
        rollup.stats.payload_bytes_verified, 1
    )
    print_table(
        "Aggregation pushdown: fleet-month rollup vs materialising the rows",
        ["query", "chunks_from_stats", "bytes_verified", "bytes_avoided", "seconds", "ratio"],
        [
            [
                "row path (mid-day cut month)",
                rows.stats.chunks_answered_from_stats,
                rows.stats.payload_bytes_verified,
                rows.stats.bytes_decoded_avoided,
                row_seconds,
                1.0,
            ],
            [
                "rollup (mid-day cut month)",
                rollup.stats.chunks_answered_from_stats,
                rollup.stats.payload_bytes_verified,
                rollup.stats.bytes_decoded_avoided,
                agg_seconds,
                ratio,
            ],
            [
                "rollup (day-aligned, full lake)",
                aligned.stats.chunks_answered_from_stats,
                aligned.stats.payload_bytes_verified,
                aligned.stats.bytes_decoded_avoided,
                float("nan"),
                float("inf"),
            ],
        ],
    )

    # The row path verifies every byte it returns; the rollup decodes only
    # the mid-day edge chunks and answers the rest from chunk statistics.
    assert rollup.frame.total_points() == 0
    assert rollup.stats.chunks_answered_from_stats > 0
    assert rollup.stats.bytes_decoded_avoided > 0
    assert ratio >= MIN_AGGREGATE_BYTES_RATIO, (
        f"aggregate rollup decoded only {ratio:.1f}x fewer payload bytes than "
        f"the row path (required >= {MIN_AGGREGATE_BYTES_RATIO}x)"
    )
    record_ratio("aggregate_rollup_bytes", ratio, floor=MIN_AGGREGATE_BYTES_RATIO)

    # Day-aligned full coverage decodes nothing at all.
    assert aligned.stats.payload_bytes_verified == 0
    assert aligned.stats.chunks_answered_from_stats == aligned.stats.chunks_seen

    # And the answers agree: the rollup is exact, not approximate.
    total = sum(int(group["count"]) for group in rollup.aggregates.values())
    assert total == rows.rows
    peak = max(float(group["max"]) for group in rollup.aggregates.values())
    mean = (
        sum(int(g["count"]) * float(g["mean"]) for g in rollup.aggregates.values())
        / total
    )
    frame_values = [s.values for _sid, _md, s in rows.frame.items()]
    want_mean = sum(float(v.sum()) for v in frame_values) / total
    assert peak == max(float(v.max()) for v in frame_values)
    assert abs(mean - want_mean) < 1e-9
