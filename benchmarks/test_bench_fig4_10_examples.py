"""Figures 2 and 4-10: the per-server metric examples.

These figures are illustrative single-server plots in the paper; the
benchmark reproduces the quantities printed in their captions (bucket
ratios per class, the orthogonality of the two low-load metrics) and times
the metric computations themselves.
"""

import numpy as np

from bench_utils import print_table
from repro.features.patterns import day_over_day_bucket_ratio
from repro.features.stability import stability_bucket_ratio
from repro.metrics.bucket_ratio import bucket_ratio, is_accurate_prediction
from repro.metrics.ll_window import is_window_correctly_chosen, lowest_load_window
from repro.telemetry.fleet import ServerClass, default_fleet_spec
from repro.telemetry.generator import WorkloadGenerator
from repro.timeseries.series import LoadSeries


def _example_servers():
    spec = default_fleet_spec(servers_per_region=(1,), weeks=4, seed=77)
    generator = WorkloadGenerator(spec)
    return {
        cls: generator.generate_server(f"fig-{cls.value}", "region-0", cls).series
        for cls in (ServerClass.STABLE, ServerClass.DAILY, ServerClass.WEEKLY, ServerClass.UNSTABLE)
    }


def test_fig4_7_pattern_bucket_ratios(benchmark):
    servers = _example_servers()

    def compute():
        rows = []
        for cls, series in servers.items():
            rows.append(
                [
                    cls.value,
                    stability_bucket_ratio(series) * 100,
                    day_over_day_bucket_ratio(series, 27, 1) * 100,
                    day_over_day_bucket_ratio(series, 27, 7) * 100,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Figures 4-7: bucket ratios per example server (%)",
        ["server class", "vs weekly mean", "vs previous day", "vs prev. equivalent day"],
        rows,
    )
    by_class = {row[0]: row for row in rows}
    # Figure 4: stable server's mean predicts it (ratio ~99%).
    assert by_class["stable"][1] > 90.0
    # Figure 5: daily server predicted by previous day.
    assert by_class["daily"][2] > 90.0
    # Figure 6: weekly server predicted by previous equivalent day but not by
    # the previous day as strongly.
    assert by_class["weekly"][3] > 90.0
    # Figure 7: pattern-free server predicted by neither.
    assert by_class["unstable"][2] < 90.0 or by_class["unstable"][3] < 90.0


def test_fig2_8_9_10_low_load_metric_cases(benchmark):
    points = 288

    def compute():
        results = {}

        # Figure 2: a prediction with 75% of points in bound is inaccurate.
        true = np.full(points, 50.0)
        predicted = true.copy()
        predicted[::4] = 40.0
        results["fig2_ratio"] = bucket_ratio(predicted, true)
        results["fig2_accurate"] = is_accurate_prediction(predicted, true)

        # Figure 8: non-overlapping windows with similar true load -> correct.
        truth_values = np.full(points, 50.0)
        truth_values[100:112] = 5.0
        truth_values[200:212] = 7.0
        truth = LoadSeries.from_values(truth_values)
        pred_values = np.full(points, 50.0)
        pred_values[200:212] = 4.0
        results["fig8_correct"] = is_window_correctly_chosen(
            LoadSeries.from_values(pred_values), truth, 0, 60
        )

        # Figure 9: load accurate in the predicted window, but a much lower
        # true window exists -> incorrectly chosen.
        truth_values = np.full(points, 50.0)
        truth_values[100:112] = 2.0
        truth = LoadSeries.from_values(truth_values)
        pred_values = np.full(points, 50.0)
        pred_values[250:262] = 48.0
        predicted_series = LoadSeries.from_values(pred_values)
        results["fig9_correct"] = is_window_correctly_chosen(predicted_series, truth, 0, 60)
        window = lowest_load_window(predicted_series, 0, 60)
        results["fig9_ratio_in_window"] = bucket_ratio(
            predicted_series.slice(window.start, window.end),
            truth.slice(window.start, window.end),
        )

        # Figure 10: windows coincide but the load level is far off -> window
        # correct, load inaccurate.
        truth_values = np.full(points, 80.0)
        truth_values[100:112] = 40.0
        truth = LoadSeries.from_values(truth_values)
        predicted_series = LoadSeries.from_values(np.where(truth_values == 40.0, 5.0, 60.0))
        results["fig10_correct"] = is_window_correctly_chosen(predicted_series, truth, 0, 60)
        window = lowest_load_window(predicted_series, 0, 60)
        results["fig10_accurate"] = is_accurate_prediction(
            predicted_series.slice(window.start, window.end),
            truth.slice(window.start, window.end),
        )
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Figures 2, 8-10: low-load metric cases",
        ["case", "value"],
        [[key, str(value)] for key, value in results.items()],
    )
    assert results["fig2_ratio"] == 0.75 and not results["fig2_accurate"]
    assert results["fig8_correct"]
    assert not results["fig9_correct"] and results["fig9_ratio_in_window"] >= 0.9
    assert results["fig10_correct"] and not results["fig10_accurate"]
