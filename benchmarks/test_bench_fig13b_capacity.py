"""Figure 13(b): servers per maximal CPU load (auto-scale opportunity).

Paper values: only 3.7% of servers reach their CPU capacity within a week,
i.e. resources could be saved for 96.3% of servers.
"""

import pytest

from bench_utils import print_table
from repro.autoscale.policy import capacity_headroom_histogram, pct_reaching_capacity


def test_fig13b_capacity_histogram(benchmark, four_region_fleet):
    def run():
        histogram = capacity_headroom_histogram(four_region_fleet)
        reaching = pct_reaching_capacity(four_region_fleet)
        return histogram, reaching

    histogram, reaching = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Figure 13(b): % of servers per maximal CPU load",
        ["max CPU bucket", "% of servers"],
        [[bucket, pct] for bucket, pct in histogram.items()],
    )
    print_table(
        "Figure 13(b): capacity summary",
        ["metric", "paper", "measured"],
        [
            ["% servers reaching capacity", 3.7, reaching],
            ["% servers with headroom", 96.3, 100.0 - reaching],
        ],
    )

    # Shape: only a small minority of servers ever reaches capacity.
    assert reaching < 15.0
    assert sum(histogram.values()) == pytest.approx(100.0, abs=0.5)
