"""Ablation benchmarks for the design choices DESIGN.md calls out.

* the asymmetric +10/-5 acceptable error bound vs. symmetric alternatives,
* the 90% bucket-ratio accuracy threshold,
* the three-week predictability history gate,
* the choice of persistent-forecast variant (previous day vs. previous
  equivalent day vs. previous-week average).

None of these are paper figures; they quantify how sensitive the headline
metrics are to the constants the paper says were "empirically chosen by
domain experts".
"""

import pytest

from bench_utils import forecast_backup_day, print_table
from repro.metrics.bucket_ratio import ErrorBound
from repro.metrics.evaluation import AccuracyEvaluationModule

EVALUATION_DAYS = (13, 20, 27)


def _fleet_predictions(fleet, model_name="persistent_previous_day", limit=120):
    predictions = {}
    days_by_server = {}
    for server_id in fleet.server_ids()[:limit]:
        series = fleet.series(server_id)
        combined = None
        used = []
        for day in EVALUATION_DAYS:
            forecast = forecast_backup_day(model_name, series, day)
            if forecast is None:
                continue
            used.append(day)
            combined = forecast if combined is None else combined.concat(forecast)
        if combined is not None:
            predictions[server_id] = combined
            days_by_server[server_id] = used
    return predictions, days_by_server


def test_ablation_error_bound(benchmark, four_region_fleet):
    """Symmetric bounds vs. the deployed asymmetric +10/-5 bound."""
    predictions, days = _fleet_predictions(four_region_fleet)
    bounds = {
        "+10/-5 (deployed)": ErrorBound(10.0, 5.0),
        "+5/-5 (tight symmetric)": ErrorBound(5.0, 5.0),
        "+10/-10 (loose symmetric)": ErrorBound(10.0, 10.0),
        "+20/-10 (loose)": ErrorBound(20.0, 10.0),
    }

    def run():
        rows = []
        for label, bound in bounds.items():
            module = AccuracyEvaluationModule(bound=bound)
            summary = module.summarize(module.evaluate(four_region_fleet, predictions, days))
            rows.append([label, summary.pct_windows_correct, summary.pct_load_accurate,
                         summary.pct_predictable_servers])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: acceptable error bound",
        ["bound", "% windows correct", "% load accurate", "% predictable"],
        rows,
    )
    by_label = {row[0]: row for row in rows}
    # Loosening the bound can only help; tightening can only hurt.
    assert by_label["+10/-10 (loose symmetric)"][2] >= by_label["+10/-5 (deployed)"][2]
    assert by_label["+5/-5 (tight symmetric)"][2] <= by_label["+10/-5 (deployed)"][2]


def test_ablation_accuracy_threshold(benchmark, four_region_fleet):
    """Sensitivity of the three headline metrics to the 90% bucket-ratio bar."""
    predictions, days = _fleet_predictions(four_region_fleet)
    thresholds = (0.80, 0.90, 0.95, 0.99)

    def run():
        rows = []
        for threshold in thresholds:
            module = AccuracyEvaluationModule(accuracy_threshold=threshold)
            summary = module.summarize(module.evaluate(four_region_fleet, predictions, days))
            rows.append([f"{threshold:.0%}", summary.pct_load_accurate,
                         summary.pct_predictable_servers])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: bucket-ratio accuracy threshold",
        ["threshold", "% load accurate", "% predictable"],
        rows,
    )
    accurate = [row[1] for row in rows]
    assert accurate == sorted(accurate, reverse=True), "accuracy must not increase with a stricter bar"


def test_ablation_history_weeks(benchmark, four_region_fleet):
    """Predictable-server share vs. the required weeks of correct history."""
    predictions, days = _fleet_predictions(four_region_fleet)
    module = AccuracyEvaluationModule()
    evaluations = module.evaluate(four_region_fleet, predictions, days)

    def run():
        rows = []
        for weeks in (1, 2, 3):
            summary = module.summarize(evaluations, required_days=weeks)
            rows.append([weeks, summary.pct_predictable_servers])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: predictability history gate",
        ["required weeks", "% predictable servers"],
        rows,
    )
    shares = [row[1] for row in rows]
    assert shares == sorted(shares, reverse=True), "a longer gate can only reduce the share"


@pytest.mark.parametrize(
    "variant",
    ["persistent_previous_day", "persistent_previous_equivalent_day", "persistent_previous_week_average"],
)
def test_ablation_persistent_forecast_variant(benchmark, four_region_fleet, variant):
    """Section 5.2: previous day covers the largest share of servers."""
    predictions, days = _fleet_predictions(four_region_fleet, model_name=variant, limit=80)
    module = AccuracyEvaluationModule()

    def run():
        return module.summarize(module.evaluate(four_region_fleet, predictions, days))

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: persistent-forecast variant = {variant}",
        ["metric", "value"],
        [
            ["% windows correct", summary.pct_windows_correct],
            ["% load accurate", summary.pct_load_accurate],
            ["% predictable", summary.pct_predictable_servers],
            ["servers evaluated", summary.n_servers],
        ],
    )
    assert summary.pct_windows_correct > 60.0
