"""Figure 13(a): impact of predictive backup scheduling.

Paper values over one month of production, reported per server group:

* servers with predictable daily patterns -- 12.5% of backups moved from
  default windows that collided with customer activity into correctly
  chosen LL windows, 85.3% of default windows already corresponded to LL
  windows by chance, only 2.1% of windows were not chosen correctly;
* stable servers -- 99.5% of default windows already were LL windows;
* busy servers (load over 60% of capacity) -- 7.7% of backup collisions
  with peaks of customer activity avoided.

Because daily-pattern servers are only ~0.2% of the fleet (Figure 3), the
benchmark oversamples them (and busy servers) in a dedicated impact fleet
so each subgroup has statistical mass; the fleet-level class mix is
benchmarked separately in the Figure 3 benchmark.
"""

import pytest

from bench_utils import print_table
from repro.core.config import PipelineConfig
from repro.core.pipeline import SeagullPipeline
from repro.features.classification import ServerClassLabel
from repro.scheduling.backup import BackupScheduler
from repro.scheduling.impact import BackupImpactAnalyzer
from repro.telemetry.fleet import FleetSpec, RegionSpec, ServerClass
from repro.telemetry.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def impact_fleet():
    spec = FleetSpec(
        regions=(RegionSpec(name="impact-region", n_servers=180),),
        class_mix={
            ServerClass.STABLE: 0.40,
            ServerClass.DAILY: 0.25,
            ServerClass.WEEKLY: 0.10,
            ServerClass.UNSTABLE: 0.15,
            ServerClass.SHORT_LIVED: 0.10,
        },
        weeks=4,
        busy_fraction=0.30,
        seed=211,
    )
    return WorkloadGenerator(spec).generate_fleet()


def test_fig13a_backup_scheduling_impact(benchmark, impact_fleet):
    pipeline = SeagullPipeline(PipelineConfig())
    analyzer = BackupImpactAnalyzer()

    def run():
        result = pipeline.run(impact_fleet, region="impact-region", week=3)
        scheduler = BackupScheduler()
        metadata = {sid: impact_fleet.metadata(sid) for sid in impact_fleet.server_ids()}
        decisions = scheduler.schedule_fleet(metadata, result.predictions, result.predictability)

        daily_ids = {
            sid for sid, features in result.features.items()
            if features.label is ServerClassLabel.DAILY
        }
        daily_decisions = {sid: d for sid, d in decisions.items() if sid in daily_ids}

        fleet_report = analyzer.analyze(impact_fleet, decisions, result.features)
        daily_report = analyzer.analyze(impact_fleet, daily_decisions, result.features)
        return result, decisions, fleet_report, daily_report

    result, decisions, fleet_report, daily_report = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert result.succeeded

    print_table(
        "Figure 13(a): servers with predictable daily patterns",
        ["metric", "paper", "measured"],
        [
            ["% backups moved to correctly chosen LL windows", 12.5, daily_report.pct_moved_to_ll_window],
            ["% default windows already = LL window", 85.3, daily_report.pct_default_already_ll],
            ["% windows not chosen correctly", 2.1, daily_report.pct_windows_incorrect],
        ],
    )
    print_table(
        "Figure 13(a): stable and busy servers (whole impact fleet)",
        ["metric", "paper", "measured"],
        [
            ["% stable servers with default = LL window", 99.5, fleet_report.pct_stable_default_already_ll],
            ["% busy-server collisions avoided", 7.7, fleet_report.pct_busy_collisions_avoided],
            ["improved customer hours (one backup day)", float("nan"), fleet_report.improved_hours],
        ],
    )
    moved = sum(1 for decision in decisions.values() if decision.moved)
    print(f"\nscheduled {len(decisions)} backups, moved {moved} to predicted windows")

    # Shape assertions per subgroup.
    assert daily_report.n_servers >= 10, "need daily-pattern servers to evaluate"
    # A minority -- but a real share -- of daily-pattern backups moves into a
    # better window; most defaults are already fine; few windows are wrong.
    assert 0.0 < daily_report.pct_moved_to_ll_window < 60.0
    assert daily_report.pct_default_already_ll > 40.0
    assert daily_report.pct_windows_incorrect < 15.0
    # Almost every stable server's default window is already a lowest-load window.
    assert fleet_report.pct_stable_default_already_ll > 90.0
    # Moving backups yields measurable hours of improved customer experience.
    assert fleet_report.improved_hours > 0.0
