"""Section 5.3.2: persistent forecast on stable servers and servers with a pattern.

Paper values: persistent forecast correctly selected 99.83% of LL windows,
accurately predicted the load during 99.06% of all windows, and classified
96.92% of these servers as predictable.
"""

from bench_utils import forecast_backup_day, print_table
from repro.features.classification import ServerClassLabel, classify_frame
from repro.metrics.evaluation import AccuracyEvaluationModule

EVALUATION_DAYS = (13, 20, 27)


def test_sec532_persistent_forecast_on_predictable_classes(benchmark, four_region_fleet):
    classification = classify_frame(four_region_fleet)
    predictable_ids = [
        sid
        for sid, label in classification.labels.items()
        if label in (ServerClassLabel.STABLE, ServerClassLabel.DAILY, ServerClassLabel.WEEKLY)
    ]

    def run():
        predictions = {}
        days = {}
        for server_id in predictable_ids:
            series = four_region_fleet.series(server_id)
            combined = None
            used = []
            for day in EVALUATION_DAYS:
                forecast = forecast_backup_day("persistent_previous_day", series, day)
                if forecast is None:
                    continue
                used.append(day)
                combined = forecast if combined is None else combined.concat(forecast)
            if combined is not None:
                predictions[server_id] = combined
                days[server_id] = used
        module = AccuracyEvaluationModule()
        evaluations = module.evaluate(four_region_fleet, predictions, days)
        return module.summarize(evaluations)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 5.3.2: persistent forecast on stable/pattern servers",
        ["metric", "paper", "measured"],
        [
            ["% LL windows chosen correctly", 99.83, summary.pct_windows_correct],
            ["% windows with accurate load", 99.06, summary.pct_load_accurate],
            ["% predictable servers", 96.92, summary.pct_predictable_servers],
        ],
    )
    # Shape: near-perfect accuracy on the easy classes.
    assert summary.pct_windows_correct > 95.0
    assert summary.pct_load_accurate > 90.0
    assert summary.pct_predictable_servers > 80.0
