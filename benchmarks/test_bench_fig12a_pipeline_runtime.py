"""Figure 12(a): runtime of the use-case-agnostic components per region size.

The paper measures Data Ingestion, Data Validation, Feature Extraction,
Model Deployment and Accuracy Evaluation per region (one week of data):
Model Deployment is roughly constant, everything else grows with input
size, and Accuracy Evaluation dominates for the largest regions.
"""

from bench_utils import REGION_SIZES, print_table
from repro.core.config import PipelineConfig
from repro.core.pipeline import SeagullPipeline

REPORTED_COMPONENTS = (
    "data_ingestion",
    "data_validation",
    "feature_extraction",
    "model_deployment",
    "accuracy_evaluation",
)


def test_fig12a_component_runtime_per_region(benchmark, region_frames):
    pipeline = SeagullPipeline(PipelineConfig())
    rows = []
    results = {}

    def run_all():
        for region, frame in region_frames.items():
            results[region] = pipeline.run(frame, region=region, week=3)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for region, frame in region_frames.items():
        result = results[region]
        assert result.succeeded
        rows.append(
            [region, len(frame), frame.total_points()]
            + [result.timing(component) for component in REPORTED_COMPONENTS]
        )
    print_table(
        "Figure 12(a): per-component pipeline runtime (seconds)",
        ["region", "servers", "points", *REPORTED_COMPONENTS],
        rows,
    )

    sizes = {row[0]: row[2] for row in rows}
    largest = max(sizes, key=sizes.get)
    smallest = min(sizes, key=sizes.get)
    largest_row = next(row for row in rows if row[0] == largest)
    smallest_row = next(row for row in rows if row[0] == smallest)

    # Feature extraction and accuracy evaluation grow with region size.
    assert largest_row[5] >= smallest_row[5]
    assert largest_row[7] >= smallest_row[7]
    # Model deployment stays roughly constant (within 50 ms across regions).
    deployment_times = [row[6] for row in rows]
    assert max(deployment_times) - min(deployment_times) < 0.05
