"""Legacy setuptools entry point.

Kept so ``pip install -e .`` works in offline environments where PEP-517
build isolation cannot download a build backend.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Seagull: load prediction and optimized resource "
        "allocation (VLDB 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
