"""Test-session bootstrap.

Makes the ``repro`` package importable directly from ``src/`` so the test
and benchmark suites run even when the editable install is unavailable
(for example in fully offline environments).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
